"""Seeded random-graph corpus for verifier burn-in and fuzzing.

The generator builds bounded random — but always *valid* — dataflow
graphs out of the public op builders, exercising the shapes the
optimizer pipeline rewrites most: identity chains, shared (CSE-able)
subexpressions, constant subtrees, variable read/update chains ordered
by control dependencies, reductions and matmuls over a small shape
palette, and multi-rank collectives.

:func:`verify_corpus` is the fuzz oracle the CLI and CI verifier lane
run: every generated graph must (a) build its execution plan cleanly
with the full static-analysis layer enabled — any diagnostic on a
generated graph is, by construction, a verifier false positive — and
(b) produce byte-identical fetch values with the optimizer pipeline on
and off, which pins the rewrites the verifier vouches for to the
semantics they claim to preserve.

Randomness comes exclusively from the caller-seeded
:class:`random.Random` — runs are reproducible from ``--seed`` alone.
"""

from __future__ import annotations

import random
from typing import Any
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.core.ops import collective_ops

__all__ = ["CorpusResult", "random_graph", "verify_corpus"]

# Shape palette: small, so generated graphs stay cheap, with enough
# variety to exercise broadcasting, reduction and matmul paths.
_SHAPES = [(2, 3), (3,), (4, 4), ()]
_BINARY = [repro.add, repro.subtract, repro.multiply, repro.maximum]
_UNARY = [repro.identity, repro.negative, repro.square]


@dataclass
class CorpusResult:
    """Outcome of one :func:`verify_corpus` sweep."""

    graphs: int = 0
    ops: int = 0
    plans_verified: int = 0
    diagnostics: list = field(default_factory=list)  # false positives
    mismatches: list = field(default_factory=list)  # optimized != legacy

    @property
    def ok(self) -> bool:
        return not self.diagnostics and not self.mismatches

    def to_dict(self) -> dict:
        return {
            "graphs": self.graphs,
            "ops": self.ops,
            "plans_verified": self.plans_verified,
            "false_positives": [d.to_dict() for d in self.diagnostics],
            "mismatches": self.mismatches,
        }


def random_graph(
    rng: random.Random, max_ops: int = 24, gpus: int = 2
) -> tuple[repro.Graph, list, list]:
    """Build one random valid graph.

    Returns ``(graph, fetch_tensors, init_ops)``; ``init_ops`` must run
    (in order) before the fetches — they are the variable initializers
    and ordered update chains.
    """
    g = repro.Graph()
    devices = [f"/device:gpu:{i}" for i in range(gpus)] + ["/device:cpu:0"]
    pool: dict[tuple, list] = {shape: [] for shape in _SHAPES}
    init_ops: list = []
    with g.as_default():
        for shape in _SHAPES:
            value = np.full(shape, round(rng.uniform(-2, 2), 3), np.float32)
            pool[shape].append(repro.constant(value))
        n_ops = rng.randint(max_ops // 2, max_ops)
        for _ in range(n_ops):
            shape = rng.choice(_SHAPES)
            with g.device(rng.choice(devices)):
                kind = rng.random()
                if kind < 0.25:
                    value = np.full(shape, round(rng.uniform(-3, 3), 3),
                                    np.float32)
                    pool[shape].append(repro.constant(value))
                elif kind < 0.55:
                    op = rng.choice(_BINARY)
                    pool[shape].append(
                        op(rng.choice(pool[shape]), rng.choice(pool[shape]))
                    )
                elif kind < 0.8:
                    op = rng.choice(_UNARY)
                    pool[shape].append(op(rng.choice(pool[shape])))
                elif kind < 0.9 and shape == (2, 3):
                    # matmul across palette shapes: (2,3) x (3,3) -> dead
                    # end unless reduced; reduce to scalar to keep the
                    # pool palette closed.
                    other = repro.constant(
                        np.full((3, 3), 0.5, np.float32)
                    )
                    product = repro.matmul(rng.choice(pool[(2, 3)]), other)
                    pool[()].append(repro.reduce_sum(product))
                else:
                    pool[()].append(
                        repro.reduce_sum(rng.choice(pool[shape]))
                    )
        # A variable with an ordered update chain: init -> add -> read.
        # The read consumes the update's *output* (the freshly assigned
        # value), the only read idiom that is data-ordered after the
        # write — reading var.value() (the raw VariableV2 output) in the
        # same run would be exactly the race the verifier rejects.
        var_shape = rng.choice([(3,), (4, 4)])
        var = repro.Variable(rng.choice(pool[var_shape]))
        init_ops.append(var.initializer)
        with g.control_dependencies([var.initializer]):
            update = repro.assign_add(var, rng.choice(pool[var_shape]))
        pool[var_shape].append(repro.identity(update))
        # One collective over the gpu ranks (when the cluster has >1).
        if gpus > 1 and rng.random() < 0.7:
            legs = []
            for i in range(gpus):
                with g.device(f"/device:gpu:{i}"):
                    legs.append(repro.add(
                        rng.choice(pool[(3,)]), rng.choice(pool[(3,)])
                    ))
            reduced = collective_ops.all_reduce(
                legs,
                devices=[f"/device:gpu:{i}" for i in range(gpus)],
            )
            pool[(3,)].extend(reduced)
        fetches = [rng.choice(pool[shape]) for shape in _SHAPES]
    return g, fetches, init_ops


def _run(graph: Any, fetches: list, init_ops: list, gpus: int,
         optimize: bool, verify: bool) -> list:
    config = repro.SessionConfig(
        num_gpus=gpus,
        graph_optimization=optimize,
        verify_plans=verify,
    )
    with repro.Session(graph=graph, config=config) as sess:
        for op in init_ops:
            sess.run(op)
        return sess.run(fetches)


def verify_corpus(
    count: int, seed: int, max_ops: int = 24, gpus: int = 2
) -> CorpusResult:
    """Generate ``count`` random graphs; verify and differential-test each."""
    from repro.errors import VerificationError

    rng = random.Random(seed)
    result = CorpusResult()
    for index in range(count):
        graph, fetches, init_ops = random_graph(rng, max_ops, gpus)
        result.graphs += 1
        result.ops += len(graph.operations)
        try:
            optimized = _run(graph, fetches, init_ops, gpus,
                             optimize=True, verify=True)
            result.plans_verified += 1 + len(init_ops)
        except VerificationError as exc:
            result.diagnostics.extend(exc.diagnostics)
            continue
        legacy = _run(graph, fetches, init_ops, gpus,
                      optimize=False, verify=False)
        for pos, (got, want) in enumerate(zip(optimized, legacy)):
            if not np.array_equal(np.asarray(got), np.asarray(want)):
                result.mismatches.append(
                    f"graph {index} (seed {seed}): fetch {pos} differs "
                    f"between optimized and legacy execution"
                )
    return result
