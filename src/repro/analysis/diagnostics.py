"""Typed diagnostics core for the static verifiers.

Every check the analysis layer performs is declared as a :class:`Rule`
(name, default severity, scope, description) in a process-wide registry,
and every violation is reported as a :class:`Diagnostic` — an immutable
record naming the rule, the graph op and/or plan item involved, the
collective rank and device where applicable, a human-readable message,
and a fix hint. Diagnostics accumulate in a :class:`Report`;
``Report.raise_if_errors`` converts error-severity findings into a
:class:`repro.errors.VerificationError` so callers (the optimizer
pipeline, ``build_plan``, the CLI) fail with every finding attached
instead of just the first.

The registry is the single source of truth for the rule catalog: the
documentation table in ``docs/ARCHITECTURE.md`` and the CLI's ``--rules``
listing are both generated from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional

from repro.errors import VerificationError

__all__ = [
    "Severity",
    "Diagnostic",
    "Rule",
    "Report",
    "register_rule",
    "get_rule",
    "rule_catalog",
]


class Severity(enum.IntEnum):
    """How bad a finding is; ordering allows ``severity >= ERROR`` checks."""

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Rule:
    """One named invariant a verifier checks.

    Attributes:
        name: stable identifier, ``<scope>/<kebab-case>`` by convention.
        severity: default severity of violations (a specific finding may
            override it, e.g. commutative-update races downgrade).
        scope: ``"graph"`` for :func:`verify_graph` rules, ``"plan"`` for
            :func:`verify_plan` rules.
        description: one-line summary for the rule catalog.
    """

    name: str
    severity: Severity
    scope: str
    description: str


_RULES: dict[str, Rule] = {}


def register_rule(
    name: str, severity: Severity, scope: str, description: str
) -> Rule:
    """Declare a rule in the catalog (idempotent for identical redeclares)."""
    if scope not in ("graph", "plan"):
        raise ValueError(f"rule scope must be 'graph' or 'plan', got {scope!r}")
    rule = Rule(name=name, severity=severity, scope=scope, description=description)
    existing = _RULES.get(name)
    if existing is not None and existing != rule:
        raise ValueError(f"rule {name!r} already registered with different fields")
    _RULES[name] = rule
    return rule


def get_rule(name: str) -> Rule:
    return _RULES[name]


def rule_catalog() -> tuple[Rule, ...]:
    """Every registered rule, sorted by (scope, name) for stable listings."""
    return tuple(sorted(_RULES.values(), key=lambda r: (r.scope, r.name)))


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation located as precisely as possible.

    ``op`` names the graph operation, ``item`` the plan item uid, ``rank``
    the collective rank and ``device`` the placed device — whichever apply.
    ``opt_pass`` attributes the finding to the optimizer pass after which
    it was detected (filled by the pipeline hook, ``None`` for standalone
    verification). ``hint`` tells the user how to fix the graph.
    """

    rule: str
    severity: Severity
    message: str
    op: Optional[str] = None
    item: Optional[int] = None
    rank: Optional[int] = None
    device: Optional[str] = None
    hint: Optional[str] = None
    opt_pass: Optional[str] = None

    def format(self) -> str:
        where = []
        if self.op is not None:
            where.append(f"op={self.op}")
        if self.item is not None:
            where.append(f"item=#{self.item}")
        if self.rank is not None:
            where.append(f"rank={self.rank}")
        if self.device is not None:
            where.append(f"device={self.device}")
        if self.opt_pass is not None:
            where.append(f"pass={self.opt_pass}")
        loc = f" [{' '.join(where)}]" if where else ""
        text = f"{self.severity.name.lower()}: {self.rule}: {self.message}{loc}"
        if self.hint:
            text += f"\n    fix: {self.hint}"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (for the CI diagnostics artifact)."""
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "message": self.message,
            "op": self.op,
            "item": self.item,
            "rank": self.rank,
            "device": self.device,
            "hint": self.hint,
            "opt_pass": self.opt_pass,
        }


@dataclass
class Report:
    """Accumulated findings of one verification run."""

    context: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def emit(self, rule: str, message: str, **location) -> Diagnostic:
        """Report a violation of a registered rule at its default severity.

        ``severity=`` in ``location`` overrides the rule default (used by
        findings that are structurally the same rule but provably less
        harmful, e.g. unordered commutative accumulations).
        """
        severity = location.pop("severity", None)
        if severity is None:
            severity = get_rule(rule).severity
        diag = Diagnostic(rule=rule, severity=severity, message=message, **location)
        self.add(diag)
        return diag

    def attribute(self, opt_pass: str) -> None:
        """Stamp every unattributed finding with the offending pass name."""
        self.diagnostics = [
            replace(d, opt_pass=opt_pass) if d.opt_pass is None else d
            for d in self.diagnostics
        ]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist (warnings allowed)."""
        return not self.errors

    def render(self) -> str:
        head = self.context or "verification"
        if not self.diagnostics:
            return f"{head}: clean"
        lines = [
            f"{head}: {len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend(d.format() for d in self.diagnostics)
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        """Raise :class:`VerificationError` carrying every finding."""
        errors = self.errors
        if not errors:
            return
        raise VerificationError(
            self.render(),
            node_def=errors[0].op,
            diagnostics=list(self.diagnostics),
        )

    def merge(self, other: "Report") -> "Report":
        self.diagnostics.extend(other.diagnostics)
        return self

    def to_dict(self) -> dict:
        return {
            "context": self.context,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
