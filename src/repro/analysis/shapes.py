"""Shape/dtype re-inference: recompute output specs from inputs + attrs.

The op builders in :mod:`repro.core.ops` compute each operation's output
specs once, at graph-construction time, and the specs are immutable from
then on. This module re-derives those specs from scratch — inputs and
static attributes only — so :func:`repro.analysis.verify_graph` can prove
the recorded metadata is still consistent after a graph has been mutated
or an optimizer pass has rewired edges.

Each inference function returns one ``(dtype, shape)`` pair per output;
either element may be ``None`` meaning "not derivable from inputs/attrs
alone, don't check" (e.g. ``Fill`` declares its dtype only in the output
spec). Op types without an entry return ``None`` from
:func:`infer_output_specs` and are skipped entirely — sources like
``Placeholder`` and ``VariableV2`` *are* the spec authority, and exotic
kernels (queues, datasets, tile I/O) opt out until a rule is written.

Inference failures raise :class:`repro.errors.InvalidArgumentError` with
the same messages the builders produce; the verifier converts them into
diagnostics rather than letting them propagate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import dtypes
from repro.core.graph import Operation
from repro.core.ops.common import broadcast_static_shapes
from repro.core.tensor import TensorShape
from repro.errors import InvalidArgumentError

__all__ = ["infer_output_specs", "inferable_op_types"]

# (dtype | None, shape | None) per output; None = "don't check".
Spec = tuple[Optional[dtypes.DType], Optional[TensorShape]]
_InferFn = Callable[[Operation], list[Spec]]

_INFERENCE: dict[str, _InferFn] = {}


def _infers(*op_types: str) -> Callable[[_InferFn], _InferFn]:
    def decorator(fn: _InferFn) -> _InferFn:
        for op_type in op_types:
            _INFERENCE[op_type] = fn
        return fn

    return decorator


def inferable_op_types() -> frozenset[str]:
    return frozenset(_INFERENCE)


def infer_output_specs(op: Operation) -> Optional[list[Spec]]:
    """Re-derived output specs for ``op``, or ``None`` if not inferable."""
    fn = _INFERENCE.get(op.type)
    if fn is None:
        return None
    return fn(op)


def _uniform_dtype(op: Operation, what: str) -> dtypes.DType:
    dtype = op.inputs[0].dtype
    for t in op.inputs[1:]:
        if t.dtype != dtype:
            raise InvalidArgumentError(
                f"{what} dtype mismatch: {dtype.name} vs {t.dtype.name}"
            )
    return dtype


# ---------------------------------------------------------------------------
# array ops
# ---------------------------------------------------------------------------

@_infers("Const")
def _const(op: Operation) -> list[Spec]:
    arr = op.get_attr("value")
    return [(dtypes.as_dtype(arr.dtype), TensorShape(arr.shape))]


@_infers("Identity", "ZerosLike")
def _same_as_input(op: Operation) -> list[Spec]:
    return [(op.inputs[0].dtype, op.inputs[0].shape)]


@_infers("Cast")
def _cast(op: Operation) -> list[Spec]:
    target = dtypes.as_dtype(op.get_attr("dst_dtype"))
    return [(target, op.inputs[0].shape)]


@_infers("Fill")
def _fill(op: Operation) -> list[Spec]:
    # dtype is declared only in the output spec; check the shape attr.
    return [(None, TensorShape(op.get_attr("shape")))]


@_infers("Reshape")
def _reshape(op: Operation) -> list[Spec]:
    x = op.inputs[0]
    new_shape = list(op.get_attr("shape"))
    if new_shape.count(-1) > 1:
        raise InvalidArgumentError("reshape allows at most one -1 dimension")
    static: list[Optional[int]] = []
    known = 1
    for d in new_shape:
        if d == -1:
            static.append(None)
        else:
            static.append(d)
            known *= d
    if -1 in new_shape and x.shape.is_fully_defined:
        total = x.shape.num_elements()
        if total % known != 0:
            raise InvalidArgumentError(
                f"Cannot reshape {x.shape} ({total} elements) into {new_shape}"
            )
        static[new_shape.index(-1)] = total // known
    elif x.shape.is_fully_defined and x.shape.num_elements() != known:
        raise InvalidArgumentError(
            f"Cannot reshape {x.shape} into {new_shape}: element count differs"
        )
    return [(x.dtype, TensorShape(static))]


@_infers("Transpose")
def _transpose(op: Operation) -> list[Spec]:
    x = op.inputs[0]
    perm = tuple(op.get_attr("perm"))
    rank = x.shape.rank
    if rank is None:
        return [(x.dtype, TensorShape(None))]
    if sorted(perm) != list(range(rank)):
        raise InvalidArgumentError(f"Bad permutation {perm} for rank {rank}")
    return [(x.dtype, TensorShape([x.shape[p] for p in perm]))]


@_infers("Concat")
def _concat(op: Operation) -> list[Spec]:
    dtype = _uniform_dtype(op, "concat")
    axis = op.get_attr("axis")
    rank = next(
        (t.shape.rank for t in op.inputs if t.shape.rank is not None), None
    )
    if rank is None:
        return [(dtype, TensorShape(None))]
    ax = axis % rank
    dims: list[Optional[int]] = list(op.inputs[0].shape.with_rank(rank).dims)
    total: Optional[int] = 0
    for t in op.inputs:
        s = t.shape.with_rank(rank)
        for i in range(rank):
            if i == ax:
                continue
            if dims[i] is None:
                dims[i] = s[i]
            elif s[i] is not None and s[i] != dims[i]:
                raise InvalidArgumentError(
                    f"concat shapes disagree on dim {i}: {dims[i]} vs {s[i]}"
                )
        if total is not None:
            total = None if s[ax] is None else total + s[ax]
    dims[ax] = total
    return [(dtype, TensorShape(dims))]


@_infers("Split")
def _split(op: Operation) -> list[Spec]:
    x = op.inputs[0]
    axis = op.get_attr("axis")
    num_splits = op.get_attr("num_splits")
    rank = x.shape.rank
    if rank is None:
        return [(x.dtype, TensorShape(None))] * num_splits
    ax = axis % rank
    dims = list(x.shape.dims)
    if dims[ax] is not None:
        if dims[ax] % num_splits != 0:
            raise InvalidArgumentError(
                f"Dimension {dims[ax]} not divisible into {num_splits} splits"
            )
        dims[ax] = dims[ax] // num_splits
    return [(x.dtype, TensorShape(dims))] * num_splits


@_infers("Stack")
def _stack(op: Operation) -> list[Spec]:
    dtype = op.inputs[0].dtype
    axis = op.get_attr("axis")
    base = op.inputs[0].shape
    for t in op.inputs[1:]:
        base = base.merge_with(t.shape)
    if base.dims is None:
        return [(dtype, TensorShape(None))]
    dims = list(base.dims)
    ax = axis % (len(dims) + 1)
    dims.insert(ax, len(op.inputs))
    return [(dtype, TensorShape(dims))]


@_infers("Squeeze")
def _squeeze(op: Operation) -> list[Spec]:
    x = op.inputs[0]
    axis = op.get_attr("axis")
    if x.shape.dims is None:
        return [(x.dtype, TensorShape(None))]
    dims = list(x.shape.dims)
    if axis is None:
        dims = [d for d in dims if d != 1]
    else:
        ax = axis % len(dims)
        if dims[ax] not in (1, None):
            raise InvalidArgumentError(
                f"Cannot squeeze dim {ax} of size {dims[ax]}"
            )
        dims.pop(ax)
    return [(x.dtype, TensorShape(dims))]


@_infers("ExpandDims")
def _expand_dims(op: Operation) -> list[Spec]:
    x = op.inputs[0]
    axis = op.get_attr("axis")
    if x.shape.dims is None:
        return [(x.dtype, TensorShape(None))]
    dims = list(x.shape.dims)
    ax = axis % (len(dims) + 1)
    dims.insert(ax, 1)
    return [(x.dtype, TensorShape(dims))]


@_infers("Slice")
def _slice(op: Operation) -> list[Spec]:
    x = op.inputs[0]
    begin = tuple(op.get_attr("begin"))
    size = tuple(op.get_attr("size"))
    if len(begin) != len(size):
        raise InvalidArgumentError("slice begin/size rank mismatch")
    if x.shape.rank is not None and x.shape.rank != len(begin):
        raise InvalidArgumentError(
            f"slice begin/size rank {len(begin)} != tensor rank {x.shape.rank}"
        )
    return [(x.dtype, TensorShape(size))]


# ---------------------------------------------------------------------------
# math ops
# ---------------------------------------------------------------------------

@_infers("Add", "Sub", "Mul", "Div", "Maximum", "Minimum")
def _binary(op: Operation) -> list[Spec]:
    dtype = _uniform_dtype(op, op.type)
    shape = broadcast_static_shapes(op.inputs[0].shape, op.inputs[1].shape)
    return [(dtype, shape)]


@_infers("GreaterEqual")
def _greater_equal(op: Operation) -> list[Spec]:
    _uniform_dtype(op, "GreaterEqual")
    shape = broadcast_static_shapes(op.inputs[0].shape, op.inputs[1].shape)
    return [(dtypes.bool_, shape)]


@_infers("Neg", "Square", "Sqrt", "Exp", "Sigmoid")
def _unary(op: Operation) -> list[Spec]:
    return [(op.inputs[0].dtype, op.inputs[0].shape)]


@_infers("MatMul")
def _matmul(op: Operation) -> list[Spec]:
    at, bt = op.inputs
    dtype = _uniform_dtype(op, "matmul")
    transpose_a = op.get_attr("transpose_a", False)
    transpose_b = op.get_attr("transpose_b", False)
    sa, sb = at.shape, bt.shape
    rank_b = sb.rank
    if sa.rank not in (None, 2):
        raise InvalidArgumentError(f"matmul lhs must be rank 2, got {sa}")
    if rank_b not in (None, 1, 2):
        raise InvalidArgumentError(f"matmul rhs must be rank 1 or 2, got {sb}")
    if rank_b == 1 and transpose_b:
        raise InvalidArgumentError("cannot transpose a rank-1 rhs")
    m = None if sa.rank is None else sa[1 if transpose_a else 0]
    ka = None if sa.rank is None else sa[0 if transpose_a else 1]
    if rank_b == 1:
        kb = sb[0]
        out_shape = TensorShape([m])
    else:
        kb = None if rank_b is None else sb[1 if transpose_b else 0]
        n = None if rank_b is None else sb[0 if transpose_b else 1]
        out_shape = (
            TensorShape([m, n]) if rank_b is not None else TensorShape(None)
        )
    if ka is not None and kb is not None and ka != kb:
        raise InvalidArgumentError(
            f"matmul inner dimensions disagree: {ka} vs {kb}"
        )
    return [(dtype, out_shape)]


@_infers("Dot")
def _dot(op: Operation) -> list[Spec]:
    dtype = _uniform_dtype(op, "dot")
    for t in op.inputs:
        if t.shape.rank not in (None, 1):
            raise InvalidArgumentError(f"dot expects vectors, got {t.shape}")
    return [(dtype, TensorShape([]))]


@_infers("AddN")
def _add_n(op: Operation) -> list[Spec]:
    dtype = _uniform_dtype(op, "add_n")
    shape = op.inputs[0].shape
    for t in op.inputs[1:]:
        shape = shape.merge_with(t.shape)
    return [(dtype, shape)]


@_infers("Sum", "Mean", "Max")
def _reduce(op: Operation) -> list[Spec]:
    x = op.inputs[0]
    axes = op.get_attr("axis")
    keepdims = op.get_attr("keepdims", False)
    rank = x.shape.rank
    if axes is None:
        out_shape = TensorShape([] if not keepdims else [1] * (rank or 0))
        if rank is None and keepdims:
            out_shape = TensorShape(None)
    elif rank is None:
        out_shape = TensorShape(None)
    else:
        norm = {a % rank for a in axes}
        dims = [
            (1 if keepdims else None) if i in norm else d
            for i, d in enumerate(x.shape.dims)
        ]
        if not keepdims:
            dims = [d for i, d in enumerate(dims) if i not in norm]
        out_shape = TensorShape(dims)
    return [(x.dtype, out_shape)]


# ---------------------------------------------------------------------------
# stateful ops
# ---------------------------------------------------------------------------

@_infers("Assign", "AssignAdd", "AssignSub")
def _assign(op: Operation) -> list[Spec]:
    var_name = op.get_attr("var_name")
    if var_name is None:
        raise InvalidArgumentError(
            f"{op.type} op {op.name!r} lacks the var_name attr"
        )
    try:
        var_op = op.graph.get_operation_by_name(var_name)
    except Exception:
        raise InvalidArgumentError(
            f"{op.type} op {op.name!r} targets unknown variable {var_name!r}"
        ) from None
    shape = var_op.outputs[0].shape.merge_with(op.inputs[0].shape)
    return [(var_op.outputs[0].dtype, shape)]


# ---------------------------------------------------------------------------
# collective ops
# ---------------------------------------------------------------------------

def _merged_input_shape(op: Operation) -> TensorShape:
    shape = op.inputs[0].shape
    for t in op.inputs[1:]:
        shape = shape.merge_with(t.shape)
    return shape


@_infers("CollectiveAllReduce")
def _all_reduce(op: Operation) -> list[Spec]:
    dtype = _uniform_dtype(op, "all_reduce")
    shape = _merged_input_shape(op)
    return [(dtype, shape)] * len(op.inputs)


@_infers("CollectiveReduceScatter")
def _reduce_scatter(op: Operation) -> list[Spec]:
    dtype = _uniform_dtype(op, "reduce_scatter")
    world = len(op.inputs)
    shape = _merged_input_shape(op)
    if shape.rank == 0:
        raise InvalidArgumentError(
            "reduce_scatter needs tensors of rank >= 1 (got a scalar)"
        )
    if shape.rank is None:
        out_shape = TensorShape(None)
    else:
        lead = shape[0]
        if lead is not None and lead % world != 0:
            raise InvalidArgumentError(
                f"reduce_scatter needs a leading dimension divisible by "
                f"the world size: {lead} rows across {world} ranks"
            )
        out_shape = TensorShape(
            [None if lead is None else lead // world, *shape.dims[1:]]
        )
    return [(dtype, out_shape)] * world


@_infers("CollectiveAllGather")
def _all_gather(op: Operation) -> list[Spec]:
    dtype = _uniform_dtype(op, "all_gather")
    lead: Optional[int] = 0
    trailing: Optional[TensorShape] = None
    for t in op.inputs:
        rank = t.shape.rank
        if rank == 0:
            raise InvalidArgumentError(
                "all_gather needs tensors of rank >= 1 (got a scalar)"
            )
        if rank is None:
            lead, trailing = None, None
            break
        tail = t.shape[1:]
        trailing = tail if trailing is None else trailing.merge_with(tail)
        head = t.shape[0]
        lead = None if (lead is None or head is None) else lead + head
    if trailing is None:
        out_shape = TensorShape(None)
    else:
        out_shape = TensorShape([lead]).concatenate(trailing)
    return [(dtype, out_shape)] * len(op.inputs)


@_infers("CollectiveBroadcast")
def _broadcast(op: Operation) -> list[Spec]:
    world = op.get_attr("world")
    tensor = op.inputs[0]
    return [(tensor.dtype, tensor.shape)] * world
