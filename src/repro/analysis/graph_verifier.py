"""Structural and shape/dtype verification of graphs and optimizer rewrites.

:func:`verify_graph` accepts either a :class:`~repro.core.graph.Graph`
(or an explicit op subset of one) or an optimizer
:class:`~repro.core.optimizer.pipeline.Subgraph` working set, and checks:

* no dangling value/control references — every edge points at an op the
  graph (or the surviving working set) still knows;
* no cycles over data + control edges (including cycles introduced
  through substitution maps by a buggy pass);
* device strings parse, and resolve against the cluster when a
  :class:`~repro.core.placement.Placer` is supplied;
* variables can be initialized before they are read (whole-graph checks
  only: a pruned fetch closure legitimately omits the initializer that
  ran in an earlier ``session.run``);
* recorded output specs agree with shape/dtype re-inference
  (:mod:`repro.analysis.shapes`), and — for optimizer working sets —
  every value substitution and folded constant preserves the dtype and a
  compatible shape of the tensor it replaces.

The checks only read; they never mutate the graph or the working set.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable, Optional, Union

from repro.analysis.diagnostics import Report, Severity, register_rule
from repro.analysis.shapes import infer_output_specs
from repro.core.graph import Graph, Operation
from repro.core.placement import DeviceSpec, Placer
from repro.core.tensor import TensorShape
from repro.errors import ReproError

__all__ = ["verify_graph"]

register_rule(
    "graph/dangling-ref", Severity.ERROR, "graph",
    "Every value/control edge must point at an op the graph still contains",
)
register_rule(
    "graph/cycle", Severity.ERROR, "graph",
    "The graph must stay acyclic over data and control edges",
)
register_rule(
    "graph/invalid-device", Severity.ERROR, "graph",
    "Device strings must parse and resolve against the cluster",
)
register_rule(
    "graph/uninitialized-variable", Severity.ERROR, "graph",
    "Every VariableV2 needs an Assign initializer somewhere in the graph",
)
register_rule(
    "graph/shape-dtype", Severity.ERROR, "graph",
    "Recorded output specs must match shape/dtype re-inference",
)
register_rule(
    "graph/substitution-type", Severity.ERROR, "graph",
    "Optimizer value substitutions must preserve dtype and a compatible shape",
)
register_rule(
    "graph/substitution-cycle", Severity.ERROR, "graph",
    "Optimizer substitution chains must terminate",
)
register_rule(
    "graph/fetch-dropped", Severity.ERROR, "graph",
    "No optimizer pass may drop an op the run fetches",
)
register_rule(
    "graph/folded-spec", Severity.ERROR, "graph",
    "Constant-folded values must match the folded op's output specs",
)


def verify_graph(
    target: Union[Graph, "Subgraph"],
    *,
    ops: Optional[Iterable[Operation]] = None,
    placer: Optional[Placer] = None,
    opt_pass: Optional[str] = None,
    context: str = "",
    cache: bool = False,
) -> Report:
    """Statically verify a graph or an optimizer working set.

    Args:
        target: a :class:`Graph`, or the optimizer pipeline's
            :class:`Subgraph` working set (post-pass verification).
        ops: optional op subset to check (graphs only). When given, the
            whole-graph-only rules (variable init-before-read) are
            skipped: a pruned closure legitimately reads variables whose
            initializer ran in an earlier ``session.run``.
        placer: when supplied, device strings are resolved against the
            cluster it describes; otherwise they are only parsed.
        opt_pass: attribute findings to this optimizer pass name.
        context: label for the report (defaults to something sensible).
        cache: memoize per-op results per graph version, so re-verifying
            an unchanged graph (the session hot path: a new plan for new
            fetches over the same graph) only checks ops not seen clean
            before. Graphs are append-only through the public API — each
            ``create_op`` bumps ``graph.version``, which invalidates the
            memo — so the cache is sound unless the caller mutates
            existing operations in place (what the adversarial tests do;
            they verify with ``cache=False``, the default).

    Returns:
        A :class:`Report`; call ``raise_if_errors()`` to fail on findings.
    """
    # Imported here: the optimizer pipeline imports this module's package
    # lazily, and this module must not import the pipeline at load time.
    from repro.core.optimizer.pipeline import Subgraph

    if isinstance(target, Subgraph):
        report = Report(context=context or "subgraph verification")
        _verify_subgraph(target, report)
    else:
        report = Report(context=context or "graph verification")
        subset = list(ops) if ops is not None else target.operations
        _verify_ops(target, subset, placer, report,
                    whole_graph=ops is None, cache=cache)
    if opt_pass is not None:
        report.attribute(opt_pass)
    return report


# ---------------------------------------------------------------------------
# whole-graph / op-subset checks
# ---------------------------------------------------------------------------

def _registered(graph: Graph, op: Operation) -> bool:
    try:
        return graph.get_operation_by_name(op.name) is op
    except ReproError:
        return False


# graph -> [version, clean op names, whole-graph-acyclic flag]. Keyed
# weakly so dropping a Graph drops its memo. Only consulted for
# placer-less verification: per-op results depend on the cluster when a
# placer resolves devices, and the memo does not key on it. ``clean``
# holds ops whose per-op checks passed; the flag records that one Kahn
# pass proved the *whole* graph acyclic at this version — graphs are
# append-only through the public API, so the verdict covers every op
# subset until ``create_op`` bumps the version.
_CLEAN_OPS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _verify_ops(
    graph: Graph,
    ops: list[Operation],
    placer: Optional[Placer],
    report: Report,
    whole_graph: bool,
    cache: bool = False,
) -> None:
    entry: Optional[list] = None
    clean: Optional[set] = None
    if cache and placer is None:
        entry = _CLEAN_OPS_CACHE.get(graph)
        if entry is None or entry[0] != graph.version:
            entry = [graph.version, set(), False]
            _CLEAN_OPS_CACHE[graph] = entry
        clean = entry[1]
    for op in ops:
        if clean is not None and op.name in clean:
            continue
        found_before = len(report.diagnostics)
        _check_edges(graph, op, report)
        _check_device(op, placer, report)
        _check_specs(op, report)
        if clean is not None and len(report.diagnostics) == found_before:
            clean.add(op.name)
    if entry is not None and entry[2]:
        pass  # a subset of a proven-acyclic graph is acyclic
    elif entry is not None:
        all_ops = graph.operations
        scratch = Report(context="whole-graph cycle check")
        _check_cycles(all_ops, {op.name for op in all_ops}, scratch)
        if scratch.ok:
            entry[2] = True
        else:
            # The cycle may live outside this subset: report only what
            # the requested op set actually exhibits.
            _check_cycles(ops, {op.name for op in ops}, report)
    else:
        _check_cycles(ops, {op.name for op in ops}, report)
    if whole_graph:
        _check_variable_initializers(ops, report)


def _check_edges(graph: Graph, op: Operation, report: Report) -> None:
    for tensor in op.inputs:
        producer = tensor.op
        if not _registered(graph, producer):
            report.emit(
                "graph/dangling-ref",
                f"input {tensor.name!r} of {op.name!r} comes from an op the "
                f"graph does not contain",
                op=op.name,
                hint="rebuild the edge from a live op of the same graph",
            )
        elif tensor.value_index >= len(producer.outputs):
            report.emit(
                "graph/dangling-ref",
                f"input {tensor.name!r} of {op.name!r} indexes output "
                f"{tensor.value_index} of {producer.name!r}, which has only "
                f"{len(producer.outputs)} output(s)",
                op=op.name,
            )
    for dep in op.control_inputs:
        if not _registered(graph, dep):
            report.emit(
                "graph/dangling-ref",
                f"control input {dep.name!r} of {op.name!r} is not an op of "
                f"this graph",
                op=op.name,
            )


def _check_device(op: Operation, placer: Optional[Placer],
                  report: Report) -> None:
    try:
        if placer is not None:
            placer.place(op)
        elif op.device:
            DeviceSpec.parse(op.device)
    except ReproError as exc:
        report.emit(
            "graph/invalid-device",
            str(exc),
            op=op.name,
            device=op.device or None,
            hint="fix the tf.device() scope string, or add the missing "
                 "job/task to the cluster spec",
        )


def _check_specs(op: Operation, report: Report) -> None:
    try:
        inferred = infer_output_specs(op)
    except ReproError as exc:
        report.emit(
            "graph/shape-dtype",
            f"shape inference for {op.type} op {op.name!r} failed: {exc}",
            op=op.name,
            hint="the op's inputs/attrs no longer describe a valid "
                 "application of this op type",
        )
        return
    if inferred is None:
        return
    if len(inferred) != len(op.outputs):
        report.emit(
            "graph/shape-dtype",
            f"{op.name!r} records {len(op.outputs)} output(s); inference "
            f"derives {len(inferred)}",
            op=op.name,
        )
        return
    for idx, ((dtype, shape), tensor) in enumerate(zip(inferred, op.outputs)):
        if dtype is not None and tensor.dtype != dtype:
            report.emit(
                "graph/shape-dtype",
                f"output {idx} of {op.name!r} records dtype "
                f"{tensor.dtype.name}; inference derives {dtype.name}",
                op=op.name,
            )
        if shape is not None and not tensor.shape.is_compatible_with(shape):
            report.emit(
                "graph/shape-dtype",
                f"output {idx} of {op.name!r} records shape {tensor.shape}; "
                f"inference derives incompatible {shape}",
                op=op.name,
            )


def _check_cycles(ops: list[Operation], names: set, report: Report) -> None:
    """Kahn's topological sort over data + control edges within the set."""
    indegree: dict[str, int] = {}
    dependents: dict[str, list[Operation]] = {}
    for op in ops:
        count = 0
        seen: set[str] = set()
        for dep in _op_deps(op):
            if dep.name in names and dep.name not in seen:
                seen.add(dep.name)
                count += 1
                dependents.setdefault(dep.name, []).append(op)
        indegree[op.name] = count
    queue = [op for op in ops if indegree[op.name] == 0]
    visited = 0
    while queue:
        op = queue.pop()
        visited += 1
        for consumer in dependents.get(op.name, ()):
            indegree[consumer.name] -= 1
            if indegree[consumer.name] == 0:
                queue.append(consumer)
    if visited == len(ops):
        return
    stuck = sorted(name for name, deg in indegree.items() if deg > 0)
    report.emit(
        "graph/cycle",
        f"{len(stuck)} op(s) form at least one data/control cycle: "
        f"{', '.join(stuck[:8])}{'...' if len(stuck) > 8 else ''}",
        op=stuck[0] if stuck else None,
        hint="break the cycle; dataflow graphs must be acyclic",
    )


def _op_deps(op: Operation) -> Iterable[Operation]:
    for tensor in op.inputs:
        yield tensor.op
    yield from op.control_inputs


def _check_variable_initializers(ops: list[Operation],
                                 report: Report) -> None:
    variables = [op for op in ops if op.type == "VariableV2"]
    if not variables:
        return
    initialized = {
        op.get_attr("var_name")
        for op in ops
        if op.type == "Assign" and op.get_attr("var_name") is not None
    }
    for var in variables:
        if var.name not in initialized:
            report.emit(
                "graph/uninitialized-variable",
                f"variable {var.name!r} has no Assign initializer anywhere "
                f"in the graph: every read will fail with "
                f"FailedPreconditionError",
                op=var.name,
                device=var.device or None,
                hint="create variables through repro.Variable (which builds "
                     "the initializer), or add an explicit repro.assign",
            )


# ---------------------------------------------------------------------------
# optimizer working-set (post-pass) checks
# ---------------------------------------------------------------------------

def _verify_subgraph(sg: Any, report: Report) -> None:
    graph = sg.graph
    # 1. Substitution chains must terminate: sg.resolve() follows
    #    value_subs unboundedly, so a cycle here would hang the pipeline —
    #    detect it with a visited set and bail out before using resolve().
    for name in sg.value_subs:
        seen = {name}
        tensor = sg.value_subs[name]
        while tensor.name in sg.value_subs:
            if tensor.name in seen:
                report.emit(
                    "graph/substitution-cycle",
                    f"value substitution chain starting at {name!r} loops "
                    f"through {tensor.name!r}",
                    op=tensor.op.name,
                    hint="a rewrite substituted a tensor for (transitively) "
                         "itself",
                )
                return  # resolution unsafe: skip the remaining checks
            seen.add(tensor.name)
            tensor = sg.value_subs[tensor.name]

    # 2. Every substitution preserves dtype and a compatible shape.
    resolve = _flat_resolver(sg)
    for name in sg.value_subs:
        try:
            original = graph.get_tensor_by_name(name)
        except ReproError:
            report.emit(
                "graph/dangling-ref",
                f"value substitution keyed on unknown tensor {name!r}",
            )
            continue
        replacement = resolve(original)
        if replacement.dtype != original.dtype:
            report.emit(
                "graph/substitution-type",
                f"substituting {replacement.name!r} for {name!r} changes "
                f"dtype {original.dtype.name} -> {replacement.dtype.name}",
                op=replacement.op.name,
                hint="rewrites may only replace a tensor with an "
                     "equal-dtype equivalent",
            )
        elif not original.shape.is_compatible_with(replacement.shape):
            report.emit(
                "graph/substitution-type",
                f"substituting {replacement.name!r} for {name!r} changes "
                f"shape {original.shape} -> incompatible {replacement.shape}",
                op=replacement.op.name,
            )

    # 3. Surviving ops only reference surviving ops, feeds, or folded
    #    roots; fetches still resolve into the surviving set. One scan
    #    builds the resolved dependency relation used by both the
    #    dangling-ref check here and the cycle check below — this hook
    #    runs after *every* pass, so the scan count matters.
    surviving = {op.name for op in sg.ops}
    indegree: dict[str, int] = {}
    dependents: dict[str, list] = {}
    for op in sg.ops:
        deps: set[str] = set()
        # A folded root materializes pre-evaluated values: it has no
        # runtime inputs, and its constant subtree legitimately dies in
        # the dead-code sweep.
        inputs = () if op.name in sg.folded else op.inputs
        for tensor in inputs:
            if tensor.name in sg.feeds:
                continue
            resolved = resolve(tensor)
            if resolved.name in sg.feeds:
                continue
            producer = resolved.op.name
            if producer not in surviving:
                report.emit(
                    "graph/dangling-ref",
                    f"input {tensor.name!r} of surviving op {op.name!r} "
                    f"resolves to {resolved.name!r}, whose producer the "
                    f"pipeline dropped",
                    op=op.name,
                    hint="the pass removed an op that still has consumers",
                )
            else:
                deps.add(producer)
        for dep in sg.effective_control_deps(op):
            if dep.name not in surviving:
                report.emit(
                    "graph/dangling-ref",
                    f"control dep {dep.name!r} of surviving op {op.name!r} "
                    f"was dropped by the pipeline",
                    op=op.name,
                )
            else:
                deps.add(dep.name)
        deps.discard(op.name)
        indegree[op.name] = len(deps)
        for dep in deps:
            dependents.setdefault(dep, []).append(op.name)
    for tensor in sg.fetch_tensors:
        if tensor.name in sg.feeds:
            continue
        resolved = resolve(tensor)
        if resolved.name not in sg.feeds and resolved.op.name not in surviving:
            report.emit(
                "graph/fetch-dropped",
                f"fetched tensor {tensor.name!r} resolves to "
                f"{resolved.name!r}, which no surviving op produces",
                op=resolved.op.name,
                hint="a pass eliminated a fetched value; fetches are roots "
                     "and must survive every rewrite",
            )
    for name in sg.fetch_op_names:
        if name not in surviving:
            report.emit(
                "graph/fetch-dropped",
                f"fetched operation {name!r} was dropped by the pipeline",
                op=name,
            )

    # 4. Folded values still match the folded op's recorded output specs.
    for name, values in sg.folded.items():
        _check_folded_entry(graph, name, values, report)

    # 5. The rewritten edge relation stays acyclic (over the dependency
    #    relation collected in the scan above).
    _check_resolved_cycles(sg, indegree, dependents, report)


def _check_folded_entry(graph: Any, name: str, values: Any,
                        report: Report) -> None:
    try:
        op = graph.get_operation_by_name(name)
    except ReproError:
        report.emit(
            "graph/dangling-ref",
            f"constant-folding recorded values for unknown op {name!r}",
        )
        return
    if len(values) != len(op.outputs):
        report.emit(
            "graph/folded-spec",
            f"folded op {name!r} has {len(op.outputs)} output(s) but "
            f"{len(values)} folded value(s)",
            op=name,
        )
        return
    for idx, (value, tensor) in enumerate(zip(values, op.outputs)):
        shape = getattr(value, "shape", None)
        if shape is None:
            continue
        if not tensor.shape.is_compatible_with(TensorShape(shape)):
            report.emit(
                "graph/folded-spec",
                f"folded value {idx} of {name!r} has shape "
                f"{tuple(shape)}, incompatible with recorded "
                f"{tensor.shape}",
                op=name,
            )


def _flat_resolver(sg: Any) -> Callable[[Any], Any]:
    """A memoizing substitute for ``sg.resolve`` (chains walked once)."""
    value_subs = sg.value_subs
    if not value_subs:
        return lambda tensor: tensor
    flat: dict[str, object] = {}

    def resolve(tensor: Any) -> Any:
        if tensor.name not in value_subs:
            return tensor
        chain = []
        while True:
            name = tensor.name
            cached = flat.get(name)
            if cached is not None:
                tensor = cached
                break
            if name not in value_subs:
                break
            chain.append(name)
            tensor = value_subs[name]
        for name in chain:
            flat[name] = tensor
        return tensor

    return resolve


def _check_resolved_cycles(sg: Any, indegree: dict, dependents: dict,
                           report: Report) -> None:
    indegree = dict(indegree)
    queue = [name for name, deg in indegree.items() if deg == 0]
    visited = 0
    while queue:
        name = queue.pop()
        visited += 1
        for consumer in dependents.get(name, ()):
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                queue.append(consumer)
    if visited == len(sg.ops):
        return
    stuck = sorted(name for name, deg in indegree.items() if deg > 0)
    report.emit(
        "graph/cycle",
        f"optimizer rewrites created a cycle through "
        f"{', '.join(stuck[:8])}{'...' if len(stuck) > 8 else ''}",
        op=stuck[0] if stuck else None,
        hint="a substitution or control merge made an op depend on itself",
    )


# ---------------------------------------------------------------------------
# incremental (per-pass) working-set verification
# ---------------------------------------------------------------------------

# graph -> (version, value-consumer index, control-consumer index,
# edges-respect-node_id-order flag). Consumers never change for existing
# ops (graphs are append-only), so the index is shared across plan builds
# over the same graph and invalidated by create_op bumping the version.
_CONSUMER_INDEX_CACHE: "weakref.WeakKeyDictionary" = (
    weakref.WeakKeyDictionary()
)


class SubgraphDeltaVerifier:
    """Per-pass verification proportional to what the pass rewrote.

    :func:`verify_graph` over a whole ``Subgraph`` re-scans every
    surviving op; running that after *each* optimizer pass makes plan
    building O(passes × ops) and blows the verification overhead budget.
    This verifier instead captures the working set's state between
    passes and checks only the delta — passes keep the same contract
    ``_rewrite_fingerprint`` relies on (they only *add* substitutions,
    drops and folds, and only *remove* ops), so the delta is exactly the
    tail of each map plus the vanished op names:

    * every new value substitution must terminate and preserve dtype and
      a compatible shape;
    * ops consuming a removed op or a rewritten control dep are
      re-checked against the surviving set (a consumer index — cached
      per graph version — finds them; substitutions extend it so
      transitively rerouted consumers stay indexed);
    * new folded entries must match the folded op's recorded specs, and
      fetches must keep resolving into the surviving set.

    Acyclicity needs no per-pass Kahn: in an API-built graph every edge
    points from a lower ``node_id`` to a higher one (ops can only
    reference already-created ops), so if every *new* resolved edge also
    points backward in ``node_id`` order the whole relation embeds in
    that total order and stays acyclic. Any forward-pointing new edge —
    which no shipped pass produces — falls back to the full
    :func:`verify_graph` scan for that pass, as does a graph whose edges
    were mutated out of creation order (detected while indexing).
    """

    def __init__(self, sg: Any) -> None:
        self._op_names = {op.name for op in sg.ops}
        self._n_subs = len(sg.value_subs)
        self._n_csubs = len(sg.control_subs)
        self._n_folded = len(sg.folded)
        self._base_vc: Optional[dict] = None  # op name -> value consumers
        self._base_cc: Optional[dict] = None  # op name -> control consumers
        self._extra_vc: dict = {}  # overlay: consumers gained via rewrites
        self._extra_cc: dict = {}
        self._ordered_edges = True

    def _ensure_index(self, graph: Graph) -> None:
        if self._base_vc is not None:
            return
        cached = _CONSUMER_INDEX_CACHE.get(graph)
        if cached is not None and cached[0] == graph.version:
            _, self._base_vc, self._base_cc, self._ordered_edges = cached
            return
        vc: dict = {}
        cc: dict = {}
        ordered = True
        for op in graph.operations:
            nid = op.node_id
            for tensor in op.inputs:
                vc.setdefault(tensor.op.name, []).append(op)
                if tensor.op.node_id >= nid:
                    ordered = False
            for dep in op.control_inputs:
                cc.setdefault(dep.name, []).append(op)
                if dep.node_id >= nid:
                    ordered = False
        self._base_vc, self._base_cc = vc, cc
        self._ordered_edges = ordered
        _CONSUMER_INDEX_CACHE[graph] = (graph.version, vc, cc, ordered)

    def _control_consumers(self, name: str) -> list:
        extra = self._extra_cc.get(name)
        base = self._base_cc.get(name, [])
        return base + extra if extra else base

    def verify_pass(self, sg: Any, pass_name: str) -> Report:
        from itertools import islice

        report = Report(context=f"after optimizer pass {pass_name!r}")
        graph = sg.graph
        current = {op.name for op in sg.ops}
        new_subs = list(islice(sg.value_subs, self._n_subs, None))
        new_csubs = list(islice(sg.control_subs, self._n_csubs, None))
        new_folded = list(islice(sg.folded, self._n_folded, None))
        removed = self._op_names - current
        self._op_names = current
        self._n_subs = len(sg.value_subs)
        self._n_csubs = len(sg.control_subs)
        self._n_folded = len(sg.folded)

        if new_subs or new_csubs or removed:
            self._ensure_index(graph)
        fallback = not self._ordered_edges
        affected: dict = {}  # op name -> op, needing an edge re-check

        # New value substitutions: chains terminate, dtype/shape hold,
        # and every implied edge keeps pointing backward in node_id
        # order. Consumers of the substituted producer re-route, so they
        # both join the re-check set and extend the consumer overlay.
        for key in new_subs:
            try:
                original = graph.get_tensor_by_name(key)
            except ReproError:
                report.emit(
                    "graph/dangling-ref",
                    f"value substitution keyed on unknown tensor {key!r}",
                )
                continue
            seen = {key}
            tensor = sg.value_subs[key]
            looped = False
            while tensor.name in sg.value_subs:
                if tensor.name in seen:
                    report.emit(
                        "graph/substitution-cycle",
                        f"value substitution chain starting at {key!r} "
                        f"loops through {tensor.name!r}",
                        op=tensor.op.name,
                        hint="a rewrite substituted a tensor for "
                             "(transitively) itself",
                    )
                    looped = True
                    break
                seen.add(tensor.name)
                tensor = sg.value_subs[tensor.name]
            if looped:
                report.attribute(pass_name)
                return report  # resolution unsafe: stop here
            replacement = tensor
            if replacement.dtype != original.dtype:
                report.emit(
                    "graph/substitution-type",
                    f"substituting {replacement.name!r} for {key!r} changes "
                    f"dtype {original.dtype.name} -> "
                    f"{replacement.dtype.name}",
                    op=replacement.op.name,
                    hint="rewrites may only replace a tensor with an "
                         "equal-dtype equivalent",
                )
            elif original.shape.dims != replacement.shape.dims and \
                    not original.shape.is_compatible_with(replacement.shape):
                report.emit(
                    "graph/substitution-type",
                    f"substituting {replacement.name!r} for {key!r} changes "
                    f"shape {original.shape} -> incompatible "
                    f"{replacement.shape}",
                    op=replacement.op.name,
                )
            if replacement.op.node_id >= original.op.node_id:
                fallback = True
            producer_name = original.op.name
            target_name = replacement.op.name
            for index in (self._base_vc, self._extra_vc):
                moved = index.get(producer_name)
                if not moved:
                    continue
                self._extra_vc.setdefault(target_name, []).extend(moved)
                for consumer in moved:
                    if consumer.name in current:
                        affected[consumer.name] = consumer

        # New control substitutions: the replacement deps take over the
        # key's consumers (overlay), which get their effective deps
        # re-checked below.
        for key in new_csubs:
            consumers = self._control_consumers(key)
            replacements = sg.control_subs[key]
            if consumers:
                min_id = min(c.node_id for c in consumers)
                for rep in replacements:
                    if rep.node_id >= min_id:
                        fallback = True
                    self._extra_cc.setdefault(
                        rep.name, []
                    ).extend(consumers)
                for consumer in consumers:
                    if consumer.name in current:
                        affected[consumer.name] = consumer

        # Removed ops: every surviving consumer must still resolve its
        # edges into the surviving set.
        for name in removed:
            for index in (self._base_vc, self._extra_vc,
                          self._base_cc, self._extra_cc):
                for consumer in index.get(name, ()):
                    if consumer.name in current:
                        affected[consumer.name] = consumer

        resolve = _flat_resolver(sg)
        feeds = sg.feeds
        for op in affected.values():
            inputs = () if op.name in sg.folded else op.inputs
            for tensor in inputs:
                if tensor.name in feeds:
                    continue
                resolved = resolve(tensor)
                if resolved.name in feeds:
                    continue
                if resolved.op.name not in current:
                    report.emit(
                        "graph/dangling-ref",
                        f"input {tensor.name!r} of surviving op {op.name!r} "
                        f"resolves to {resolved.name!r}, whose producer the "
                        f"pipeline dropped",
                        op=op.name,
                        hint="the pass removed an op that still has "
                             "consumers",
                    )
            if not op.control_inputs:
                continue  # effective deps derive only from control inputs
            for dep in sg.effective_control_deps(op):
                if dep.name not in current:
                    report.emit(
                        "graph/dangling-ref",
                        f"control dep {dep.name!r} of surviving op "
                        f"{op.name!r} was dropped by the pipeline",
                        op=op.name,
                    )

        for name in new_folded:
            _check_folded_entry(graph, name, sg.folded[name], report)

        for tensor in sg.fetch_tensors:
            if tensor.name in feeds:
                continue
            resolved = resolve(tensor)
            if resolved.name not in feeds and resolved.op.name not in current:
                report.emit(
                    "graph/fetch-dropped",
                    f"fetched tensor {tensor.name!r} resolves to "
                    f"{resolved.name!r}, which no surviving op produces",
                    op=resolved.op.name,
                    hint="a pass eliminated a fetched value; fetches are "
                         "roots and must survive every rewrite",
                )
        for name in sg.fetch_op_names:
            if name not in current:
                report.emit(
                    "graph/fetch-dropped",
                    f"fetched operation {name!r} was dropped by the "
                    f"pipeline",
                    op=name,
                )

        if fallback:
            # A new edge points forward in node_id order (or the graph's
            # edges were mutated out of it): the cheap acyclicity
            # argument no longer applies, so run the full scan.
            report = verify_graph(
                sg, context=f"after optimizer pass {pass_name!r}"
            )
        report.attribute(pass_name)
        return report
