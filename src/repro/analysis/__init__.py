"""Static analysis of graphs and execution plans.

This package is the repo's verification layer: pure, read-only checkers
that prove structural and concurrency invariants of a :class:`Graph` (or
an optimizer-pass :class:`Subgraph`) and of the lowered
:class:`ExecutionPlan` before anything executes on the simulated cluster.

Entry points:

* :func:`verify_graph` — shape/dtype re-inference plus structural
  invariants (acyclicity, no dangling value/control references, valid
  device strings, variables initialized before reads).
* :func:`verify_plan` — variable-race detection over happens-before
  reachability, send/recv rendezvous pairing, and collective
  world-membership / issue-order deadlock proofs.
* ``python -m repro.analysis`` — CLI that builds and verifies every
  example graph plus a seeded random-graph corpus (see ``__main__``).

Sessions run both automatically when ``SessionConfig.verify_plans`` (or
the ``REPRO_VERIFY_PLANS`` environment variable) is set: ``verify_graph``
after every optimizer pass — attributing violations to the offending
pass — and ``verify_plan`` on each plan before it enters the plan cache.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Report,
    Rule,
    Severity,
    get_rule,
    register_rule,
    rule_catalog,
)
from repro.analysis.graph_verifier import verify_graph
from repro.analysis.plan_verifier import verify_plan

__all__ = [
    "Diagnostic",
    "Report",
    "Rule",
    "Severity",
    "get_rule",
    "register_rule",
    "rule_catalog",
    "verify_graph",
    "verify_plan",
]
