"""Graph pruning and partitioning into per-device execution plans.

Given fetches and feeds, the partitioner:

1. prunes the graph to the ops reachable (backwards) from the fetches,
   cutting edges supplied through the feed dict;
2. optionally runs the Grappler-style pass pipeline
   (:mod:`repro.core.optimizer`) over the pruned set — identity/NoOp
   collapsing, CSE, constant folding, redundant-dependency pruning;
3. assigns every surviving op a fully-qualified device via the
   :class:`~repro.core.placement.Placer` (constant-folded roots become
   zero-cost ``const`` items on their placed device);
4. splits the ops by device and inserts explicit ``_Send``/``_Recv`` item
   pairs on every cross-device edge (data *and* control), keyed for the
   run's rendezvous — TF's distributed-execution mechanism, and the place
   where all network traffic in the paper's benchmarks originates — then
   coalesces duplicate transfers left after placement;
5. routes fetched tensors to the client device and precomputes the
   dependency graph (counts + dependents) the executor's
   dependency-counting dispatcher consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


from repro.core.graph import Graph, Operation
from repro.core.ops.collective_ops import COLLECTIVE_OP_TYPES
from repro.core.placement import Placer
from repro.core.tensor import Tensor
from repro.errors import InvalidArgumentError
from repro.runtime import collective as collective_runtime
from repro.runtime.rendezvous import make_key

__all__ = ["Item", "ExecutionPlan", "build_plan", "FEED"]

# Sentinel marking an input edge satisfied from the feed dict.
FEED = "__feed__"


@dataclass
class Item:
    """One schedulable unit on one device."""

    uid: int
    kind: str  # "op" | "send" | "recv" | "const" | "collective" | "fused"
    device: str
    op: Optional[Operation] = None
    # Value inputs: (producer Item, output index) or (FEED, tensor name).
    sources: list = field(default_factory=list)
    # Pure ordering dependencies (control edges).
    extra_deps: list = field(default_factory=list)
    # send/recv wiring.
    key: Optional[str] = None
    dst_device: Optional[str] = None  # send only
    tensor_name: Optional[str] = None  # send/recv: which tensor moves
    # Constant-folded output values ("const" items only).
    const_values: Optional[list] = None
    # Whether any surrounding tensor is double precision ("op" items;
    # precomputed so the executor's cost conversion skips a tensor scan).
    double_precision: bool = False
    # Which rank of its collective op this leg executes ("collective"
    # items only; one leg per rank, all sharing the same ``op``).
    collective_rank: int = 0
    # The communication schedule the leg group drives ("collective" items
    # only): the op's algorithm attr with "auto" resolved per payload and
    # world size at lowering time.
    collective_algorithm: Optional[str] = None
    # Per-output consumer counts (memory refcounting), filled by build_plan.
    consumer_counts: list = field(default_factory=list)
    # Dependency graph (static per plan), filled by build_plan: number of
    # distinct producer items, and the items waiting on this one.
    num_deps: int = 0
    dependents: list = field(default_factory=list)
    # Pre-fusion plan-order position, set by the kernel-fusion pass (a
    # fused item inherits its head's). The executor's chain runner uses
    # it to dispatch a member's external dependents in the exact order
    # the unfused ready list would have produced.
    order: int = 0
    # Fused-item uids whose merged-path blocker counters this item's
    # completion decrements (see ``ExecutionPlan.chain_blockers``).
    unblocks: Any = None
    # The compiled chain ("fused" items only): a
    # :class:`~repro.core.optimizer.kernel_fusion.CompiledChain` executing
    # every member op as one dispatch. Built once at plan time and kept
    # across cached runs (the session's cache-hit reset clears only
    # ``process``/``out_values`` — on the fused item and its members).
    compiled: Any = None
    # Runtime state, owned by the executor.
    process: Any = None
    out_values: Optional[list] = None

    def __repr__(self) -> str:
        label = self.op.name if self.op is not None else self.key
        return f"<Item #{self.uid} {self.kind} {label!r} on {self.device}>"


@dataclass
class ExecutionPlan:
    """Everything a run needs: items, per-device lists, fetch routing."""

    items: list[Item]
    per_device: dict[str, list[Item]]
    # For each fetch tensor: local (Item, out_idx) on the client device.
    fetch_sources: list
    devices_by_task: dict  # (job, task) -> set of device strings
    placements: dict  # op name -> device string
    # Per-pass optimizer statistics recorded when the plan was built.
    pass_stats: list = field(default_factory=list)
    # Collective op name -> resolved algorithm ("ring"/"tree"/...), the
    # lowering's per-payload "auto" decisions; copied into RunMetadata.
    collective_algorithms: dict = field(default_factory=dict)
    # Findings the static verifier attached when the plan was built with
    # verify=True (non-fatal ones only: errors raise instead). Empty when
    # verification was off.
    verifier_diagnostics: list = field(default_factory=list)
    # True when this plan passed static verification at build time.
    verified: bool = False
    # Kernel-fusion accounting: number of "fused" items in the plan, and
    # how many original op items they absorbed (copied into RunMetadata).
    compiled_items: int = 0
    fused_op_count: int = 0
    # Merged-path admission (kernel fusion): fused-item uid -> number of
    # same-device items that are NOT descendants of the chain. The
    # dispatcher copies the counts per run and decrements them through
    # ``Item.unblocks``; at zero, nothing can touch the chain's device
    # mid-span, so the whole chain may run as one calendar event.
    chain_blockers: dict = field(default_factory=dict)

    @property
    def tasks(self) -> list:
        return sorted(self.devices_by_task)


def _normalize_feeds(feed_dict) -> dict[str, Any]:
    feeds: dict[str, Any] = {}
    if not feed_dict:
        return feeds
    for key, value in feed_dict.items():
        if isinstance(key, Tensor):
            feeds[key.name] = value
        elif isinstance(key, str):
            feeds[key] = value
        else:
            raise InvalidArgumentError(
                f"feed_dict keys must be Tensors or names, got {key!r}"
            )
    return feeds


def build_plan(
    graph: Graph,
    fetch_ops: Sequence[Operation],
    fetch_tensors: Sequence[Tensor],
    feeds: dict[str, Any],
    placer: Placer,
    client_device: str,
    run_id: int,
    optimizer_options=None,
    symbolic: bool = False,
    verify: bool = False,
    fast_path: bool = True,
) -> ExecutionPlan:
    """Construct the execution plan for one session run.

    Args:
        optimizer_options: an :class:`~repro.core.optimizer.OptimizerOptions`
            enabling the Grappler-style pass pipeline; ``None`` (the
            default) builds the plan with no rewriting.
        symbolic: whether the session executes shape-only (constant folding
            evaluates with the same flag so folded values match execution).
        verify: run the static analysis layer (:mod:`repro.analysis`):
            ``verify_graph`` on the pruned closure before optimization and
            after every optimizer pass, and ``verify_plan`` on the lowered
            plan before it is returned (and therefore before the session
            caches it). Raises :class:`~repro.errors.VerificationError`
            on any error-severity finding.
        fast_path: which executor lane will run the plan. Kernel fusion
            fuses multi-consumer chains only for the fast path (its chain
            runner can publish mid-chain outputs to external dependents);
            legacy-lane plans restrict fusion to sole-consumer runs.
    """
    # ---- 1. prune ---------------------------------------------------------
    needed: dict[str, Operation] = {}
    stack: list[Operation] = list(fetch_ops) + [
        t.op for t in fetch_tensors if t.name not in feeds
    ]
    while stack:
        op = stack.pop()
        if op.name in needed:
            continue
        needed[op.name] = op
        for tensor in op.inputs:
            if tensor.name in feeds:
                continue  # edge satisfied by the feed: do not traverse
            if tensor.op.name not in needed:
                stack.append(tensor.op)
        for dep in op.control_inputs:
            if dep.name not in needed:
                stack.append(dep)
    # Graph insertion order is a valid topological order: an op's inputs
    # exist before the op is created.
    ordered = sorted(needed.values(), key=lambda o: o.node_id)

    if verify:
        # Verify the user's graph as pruned, before any rewriting: a
        # pre-existing defect must not be attributed to an optimizer pass.
        # No placer here — device strings are parsed only, so a device
        # the cluster lacks still surfaces from the place stage below
        # with its native error type (NotFoundError), not a
        # VerificationError.
        from repro.analysis import verify_graph

        verify_graph(
            graph, ops=ordered, context="pre-optimization graph", cache=True
        ).raise_if_errors()

    # ---- 2. optimize -------------------------------------------------------
    opt = None
    pass_stats: list = []
    if optimizer_options is not None:
        from repro.core.optimizer import run_pipeline

        opt = run_pipeline(
            graph, ordered, fetch_ops, fetch_tensors, feeds,
            optimizer_options, symbolic=symbolic, verify=verify,
        )
        ordered = opt.ops
        pass_stats = list(opt.stats)

    def resolve(tensor: Tensor) -> Tensor:
        if opt is not None:
            return opt.value_subs.get(tensor.name, tensor)
        return tensor

    def control_inputs_of(op: Operation):
        if opt is not None:
            deps = opt.control_deps.get(op.name)
            if deps is not None:
                return deps
        return op.control_inputs

    # ---- 3. place ---------------------------------------------------------
    placements = {op.name: placer.place(op) for op in ordered}

    # ---- 4. items + send/recv insertion ------------------------------------
    items: list[Item] = []
    op_items: dict[str, Item] = {}
    # Collective op name -> its per-rank legs (lowering replaces the one
    # graph op with one "collective" item per rank; output index r is
    # produced by leg r's single output slot).
    collective_legs: dict[str, list[Item]] = {}
    # Collective op name -> resolved algorithm (lowering's "auto" picks).
    collective_algorithms: dict[str, str] = {}
    # (tensor name, dst device) -> recv Item  (dedupe: one transfer feeds
    # every consumer of the tensor on that device).
    recv_cache: dict[tuple[str, str], Item] = {}
    # (producer op name, dst device) -> recv-of-control Item.
    ctrl_cache: dict[tuple[str, str], Item] = {}

    def new_item(**kwargs) -> Item:
        item = Item(uid=len(items), **kwargs)
        items.append(item)
        return item

    def producer_of(tensor: Tensor) -> tuple[Item, int]:
        """The (item, output index) producing ``tensor`` after lowering."""
        legs = collective_legs.get(tensor.op.name)
        if legs is not None:
            return legs[tensor.value_index], 0
        return op_items[tensor.op.name], tensor.value_index

    def route_value(tensor: Tensor, dst_device: str):
        """Source ref delivering ``tensor`` onto ``dst_device``."""
        if tensor.name in feeds:
            return (FEED, tensor.name)
        tensor = resolve(tensor)
        if tensor.name in feeds:
            return (FEED, tensor.name)
        producer, out_index = producer_of(tensor)
        if producer.device == dst_device:
            return (producer, out_index)
        cache_key = (tensor.name, dst_device)
        if cache_key not in recv_cache:
            key = make_key(producer.device, dst_device, tensor.name, run_id)
            send = new_item(
                kind="send",
                device=producer.device,
                sources=[(producer, out_index)],
                key=key,
                dst_device=dst_device,
                tensor_name=tensor.name,
            )
            recv = new_item(
                kind="recv",
                device=dst_device,
                key=key,
                tensor_name=tensor.name,
                # The rendezvous would match them anyway, but registering
                # the send as an ordering edge keeps the dependency graph
                # complete for the counting dispatcher and for deadlock
                # diagnostics.
                extra_deps=[send],
            )
            recv_cache[cache_key] = recv
        return (recv_cache[cache_key], 0)

    def _route_control_item(producer: Item, label: str,
                            dst_device: str) -> Item:
        if producer.device == dst_device:
            return producer
        cache_key = (label, dst_device)
        if cache_key not in ctrl_cache:
            key = make_key(producer.device, dst_device, f"^{label}", run_id)
            send = new_item(
                kind="send",
                device=producer.device,
                sources=[],
                extra_deps=[producer],
                key=key,
                dst_device=dst_device,
                tensor_name=f"^{label}",
            )
            recv = new_item(
                kind="recv",
                device=dst_device,
                key=key,
                tensor_name=f"^{label}",
                extra_deps=[send],
            )
            ctrl_cache[cache_key] = recv
        return ctrl_cache[cache_key]

    def route_control(dep_op: Operation, dst_device: str) -> list[Item]:
        """Items whose completion implies ``dep_op`` ran, visible on dst.

        A single item normally; a lowered collective contributes one
        ordering edge per rank leg (the op "ran" once every leg did).
        """
        legs = collective_legs.get(dep_op.name)
        if legs is not None:
            return [
                _route_control_item(leg, f"{dep_op.name}:{rank}", dst_device)
                for rank, leg in enumerate(legs)
            ]
        return [_route_control_item(op_items[dep_op.name], dep_op.name,
                                    dst_device)]

    def control_deps_of(op: Operation, device: str) -> list[Item]:
        deps: list[Item] = []
        for dep in control_inputs_of(op):
            deps.extend(route_control(dep, device))
        return deps

    def static_payload_nbytes(op: Operation) -> Optional[int]:
        """Static per-rank buffer bytes of a collective, if known."""
        for tensor in op.inputs:
            if tensor.shape.is_fully_defined:
                return tensor.shape.num_elements() * tensor.dtype.size
        return None

    def lower_collective(op: Operation) -> None:
        """Expand a collective op into one schedule leg per rank.

        Each leg lands on its rank's device — explicit ``devices`` attr
        first, else colocated with the rank input's producer — takes only
        its *own* rank's input through ``route_value`` (the collective
        traffic itself is charged by the executor's shared schedule,
        never by per-input send/recv fan-in), and produces output index
        ``rank`` of the op as its single output slot. The op's
        ``algorithm`` attr is resolved here: ``"auto"`` picks the
        schedule per static payload size and world size
        (:func:`repro.runtime.collective.select_algorithm` — tree for
        latency-bound small allreduces, ring at bandwidth scale), and
        the decision is recorded on the plan for ``RunMetadata``.
        """
        world = op.get_attr("world")
        devices_attr = op.get_attr("devices")
        algorithm = op.get_attr("algorithm") or "auto"
        if algorithm == "auto":
            algorithm = collective_runtime.select_algorithm(
                op.type, static_payload_nbytes(op), world
            )
        collective_algorithms[op.name] = algorithm
        if (
            op.type == "CollectiveBroadcast"
            and world > 1
            and devices_attr is None
        ):
            # Unlike allreduce/allgather there is one input for W ranks:
            # non-root placement cannot be inferred, and colocating every
            # leg with the root would silently model a W-way broadcast as
            # zero communication.
            raise InvalidArgumentError(
                f"{op.name}: a broadcast with world={world} > 1 under a "
                f"Session needs explicit placement for its non-root legs. "
                f"Fix: pass devices=[...] (one device per rank) to "
                f"repro.broadcast, or colocate inputs — express the "
                f"exchange through all_reduce/all_gather, whose per-rank "
                f"inputs give every leg a producer to colocate with. "
                f"(Eager execution accepts a bare world=: no placement.)"
            )
        legs = []
        for rank in range(world):
            input_t = (
                op.inputs[0] if op.type == "CollectiveBroadcast"
                else op.inputs[rank]
            )
            if devices_attr is not None:
                dev = placer.resolve_device(
                    devices_attr[rank], op.type, name=f"{op.name}[{rank}]"
                )
            else:
                resolved = resolve(input_t)
                upstream = collective_legs.get(resolved.op.name)
                if upstream is not None:
                    # Chained collectives: colocate with the upstream
                    # *leg* that produces this rank's input (the op's
                    # nominal placement is a single device and would
                    # collapse every leg onto it).
                    dev = upstream[resolved.value_index].device
                elif (
                    resolved.name not in feeds
                    and resolved.op.name in placements
                ):
                    dev = placements[resolved.op.name]
                else:
                    # Fed input: its producer was pruned — honour the
                    # placeholder's requested device string instead.
                    dev = placer.resolve_device(
                        resolved.op.device, op.type, name=f"{op.name}[{rank}]"
                    )
            leg = new_item(kind="collective", device=dev, op=op)
            leg.collective_rank = rank
            leg.collective_algorithm = algorithm
            legs.append(leg)
        collective_legs[op.name] = legs
        for rank, leg in enumerate(legs):
            if op.type == "CollectiveBroadcast":
                # Only the root holds the payload; the other legs receive
                # it through the ring schedule, not through route_value.
                leg.sources = (
                    [route_value(op.inputs[0], leg.device)] if rank == 0 else []
                )
            else:
                leg.sources = [route_value(op.inputs[rank], leg.device)]
            leg.extra_deps = control_deps_of(op, leg.device)

    folded = opt.folded if opt is not None else {}
    for op in ordered:
        device = placements[op.name]
        if op.type in COLLECTIVE_OP_TYPES:
            lower_collective(op)
            continue
        if op.name in folded:
            # Constant-folded root: materializes pre-evaluated outputs on
            # its device at zero simulated cost; no runtime inputs.
            item = new_item(
                kind="const", device=device, op=op,
                const_values=folded[op.name],
            )
            op_items[op.name] = item
            continue
        if opt is not None and op.type == "Const":
            # Plain constants need no kernel dispatch either; as const
            # items they become coalescable and complete inline.
            item = new_item(
                kind="const", device=device, op=op,
                const_values=[op.get_attr("value")],
            )
            op_items[op.name] = item
            item.extra_deps = control_deps_of(op, device)
            continue
        item = new_item(kind="op", device=device, op=op)
        item.double_precision = _is_double_precision(op)
        op_items[op.name] = item
        item.sources = [route_value(t, device) for t in op.inputs]
        item.extra_deps = control_deps_of(op, device)

    # ---- 5. fetch routing ---------------------------------------------------
    fetch_sources = []
    for tensor in fetch_tensors:
        if tensor.name in feeds:
            fetch_sources.append((FEED, tensor.name))
            continue
        fetch_sources.append(route_value(tensor, client_device))

    # ---- 6. transfer coalescing ---------------------------------------------
    if opt is not None and opt.transfer_coalescing:
        from repro.core.optimizer.coalescing import coalesce_transfers

        items, fetch_sources, coalesce_stats = coalesce_transfers(
            items, fetch_sources
        )
        pass_stats.append(coalesce_stats)

    # ---- 7. kernel fusion ----------------------------------------------------
    compiled_items = 0
    fused_op_count = 0
    if opt is not None and opt.kernel_fusion:
        from repro.core.optimizer.kernel_fusion import fuse_kernel_chains

        items, fetch_sources, fusion_stats = fuse_kernel_chains(
            items, fetch_sources, codegen=opt.kernel_fusion_codegen,
            multi_consumer=fast_path,
        )
        pass_stats.append(fusion_stats)
        compiled_items = fusion_stats.detail["chains"]
        fused_op_count = fusion_stats.detail["fused_ops"]

    # ---- consumer counts (memory refcounting) -------------------------------
    # Fused chains precompute their mid-members' counts; the loop below
    # covers surviving items only (a fused item's outputs are its tail's).
    for item in items:
        if item.kind == "op":
            n_out = len(item.op.outputs)
        elif item.kind == "const":
            n_out = len(item.const_values)
        elif item.kind == "fused":
            n_out = item.compiled.n_outputs
        else:
            n_out = 1
        item.consumer_counts = [0] * n_out
    for item in items:
        for source in item.sources:
            if source[0] is not FEED:
                producer, idx = source
                producer.consumer_counts[idx] += 1
    for source in fetch_sources:
        if source[0] is not FEED:
            producer, idx = source
            producer.consumer_counts[idx] += 1

    # ---- dependency graph (static per plan) ---------------------------------
    # The executor's dependency-counting dispatcher needs, per item, the
    # number of distinct producers and the forward dependents list.
    for item in items:
        seen: set[int] = set()
        for source in item.sources:
            if source[0] is not FEED:
                producer = source[0]
                if producer.uid not in seen:
                    seen.add(producer.uid)
                    producer.dependents.append(item)
        for dep in item.extra_deps:
            if dep.uid not in seen:
                seen.add(dep.uid)
                dep.dependents.append(item)
        item.num_deps = len(seen)

    # ---- merged-path admission (kernel fusion) -------------------------------
    # A chain may run as ONE calendar event (executor merged path) when
    # nothing can observe or perturb its device mid-span. Statically that
    # requires every external dependent of a mid-chain member to be a
    # *descendant* of the fused item — such a dependent cannot become
    # ready before the chain's tail completes, so notifying it at the
    # chain's end instead of at the member's completion is unobservable.
    # For each admissible chain, count the same-device items that are NOT
    # descendants and that can contend the device FIFO (ops holding the
    # device, collectives, other fused chains): once all of them have
    # completed, every member's device acquire is uncontended and the
    # merged span's timing is bit-identical to per-member dispatch.
    # Sends, recvs and consts never acquire the device resource, so they
    # are not counted — a transport completing mid-span interleaves its
    # pool traffic differently than per-member dispatch would (the
    # members' allocations are replayed at span end), which can shift
    # ``MemoryPool.peak`` and, at capacity edges, which item hits OOM
    # first; timing and values are unaffected.
    chain_blockers: dict = {}
    if compiled_items:
        from repro.core.optimizer.kernel_fusion import _NO_DEVICE_HOLD

        def fifo_capable(other: Item) -> bool:
            if other.kind in ("fused", "collective"):
                return True
            return other.kind == "op" and other.op.type not in _NO_DEVICE_HOLD

        def descendants_of(fused: Item) -> set:
            # Reachability over dependents edges; entering another fused
            # item also exposes its members' external dependents (they
            # run no earlier than that chain's start, which is already
            # after ``fused`` completed).
            seen_uids: set[int] = {fused.uid}
            frontier = [fused]
            while frontier:
                node = frontier.pop()
                edges = list(node.dependents)
                if node.kind == "fused" and node is not fused:
                    for step in node.compiled.steps[:-1]:
                        edges.extend(step.member.dependents)
                for dep in edges:
                    if dep.uid not in seen_uids:
                        seen_uids.add(dep.uid)
                        frontier.append(dep)
            return seen_uids

        for fused in items:
            if fused.kind != "fused":
                continue
            chain = fused.compiled
            descendants = descendants_of(fused)
            chain.mergeable = all(
                dep.uid in descendants
                for step in chain.steps[:-1]
                for dep in step.member.dependents
            )
            if not chain.mergeable:
                continue
            blockers = 0
            for other in items:
                if (
                    other.device == fused.device
                    and other.uid not in descendants
                    and fifo_capable(other)
                ):
                    blockers += 1
                    if other.unblocks is None:
                        other.unblocks = []
                    other.unblocks.append(fused.uid)
            chain_blockers[fused.uid] = blockers

    # ---- group by device -----------------------------------------------------
    per_device: dict[str, list[Item]] = {}
    devices_by_task: dict[tuple[str, int], set] = {}
    for item in items:
        per_device.setdefault(item.device, []).append(item)
        job, task = _job_task_of(item.device)
        devices_by_task.setdefault((job, task), set()).add(item.device)

    plan = ExecutionPlan(
        items=items,
        per_device=per_device,
        fetch_sources=fetch_sources,
        devices_by_task=devices_by_task,
        placements=placements,
        pass_stats=pass_stats,
        collective_algorithms=collective_algorithms,
        compiled_items=compiled_items,
        fused_op_count=fused_op_count,
        chain_blockers=chain_blockers,
    )
    if verify:
        _verify_built_plan(plan)
    return plan


def _verify_built_plan(plan: ExecutionPlan) -> None:
    """Run :func:`repro.analysis.verify_plan` on a freshly lowered plan.

    Called before ``build_plan`` returns, so a defective plan can never
    enter the session's plan cache. Non-fatal findings stay attached as
    ``plan.verifier_diagnostics``; error findings raise. When the
    ``REPRO_VERIFY_REPORT`` environment variable names a file, a JSON
    line summarizing the verification is appended — the burn-in harness
    and the CI verifier lane count plans through this channel.
    """
    import json
    import os

    from repro.analysis import verify_plan

    report = verify_plan(plan)
    plan.verifier_diagnostics = list(report.diagnostics)
    plan.verified = report.ok
    report_path = os.environ.get("REPRO_VERIFY_REPORT")
    if report_path:
        record = {
            "items": len(plan.items),
            "devices": len(plan.per_device),
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "diagnostics": [d.to_dict() for d in report.diagnostics],
        }
        with open(report_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
    report.raise_if_errors()


def _is_double_precision(op) -> bool:
    for tensor in (*op.outputs, *op.inputs):
        if tensor.dtype.size >= 8 and (
            tensor.dtype.is_floating or tensor.dtype.is_complex
        ):
            return True
    return False


def _job_task_of(device: str) -> tuple[str, int]:
    job = None
    task = None
    for part in device.strip("/").split("/"):
        if part.startswith("job:"):
            job = part[4:]
        elif part.startswith("task:"):
            task = int(part[5:])
    if job is None or task is None:
        raise InvalidArgumentError(f"Device {device!r} lacks job/task")
    return job, task
