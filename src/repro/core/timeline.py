"""TensorFlow-Timeline analog: render RunMetadata as a Chrome trace.

The paper's Fig. 3 shows such a timeline for the CG solver; the JSON
produced here loads in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json

from repro.core.metadata import RunMetadata

__all__ = ["Timeline"]


class Timeline:
    """Converts :class:`RunMetadata` into Chrome trace-event JSON."""

    def __init__(self, run_metadata: RunMetadata):
        self._metadata = run_metadata

    def generate_chrome_trace_format(self, show_transfers: bool = True) -> str:
        """The trace as a JSON string (Chrome trace-event format)."""
        events = []
        pids: dict[str, int] = {}

        def pid_of(device: str) -> int:
            if device not in pids:
                pid = len(pids)
                pids[device] = pid
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "args": {"name": device},
                    }
                )
            return pids[device]

        for stat in self._metadata.step_stats:
            events.append(
                {
                    "name": stat.op_name,
                    "cat": stat.op_type,
                    "ph": "X",
                    "pid": pid_of(stat.device),
                    "tid": 0,
                    "ts": stat.start * 1e6,  # trace format wants microseconds
                    "dur": max(stat.duration * 1e6, 0.01),
                    "args": {"op_type": stat.op_type, "out_bytes": stat.out_bytes},
                }
            )
        if show_transfers:
            for idx, xfer in enumerate(self._metadata.transfers):
                pid = pid_of(f"transfers ({xfer.protocol})")
                events.append(
                    {
                        "name": xfer.key.split(";")[2],
                        "cat": "transfer",
                        "ph": "X",
                        "pid": pid,
                        "tid": idx % 8,
                        "ts": xfer.start * 1e6,
                        "dur": max(xfer.duration * 1e6, 0.01),
                        "args": {
                            "src": xfer.src_device,
                            "dst": xfer.dst_device,
                            "nbytes": xfer.nbytes,
                            "MB/s": round(xfer.bandwidth / 1e6, 1),
                        },
                    }
                )
        return json.dumps({"traceEvents": events}, indent=1)

    def save(self, path: str, show_transfers: bool = True) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.generate_chrome_trace_format(show_transfers))

    def device_summary(self) -> dict[str, float]:
        """Total busy seconds per device."""
        busy: dict[str, float] = {}
        for stat in self._metadata.step_stats:
            busy[stat.device] = busy.get(stat.device, 0.0) + stat.duration
        return busy
