"""Dataflow graphs: operations, edges, name scopes and device scopes.

A :class:`Graph` is a DAG of :class:`Operation` nodes whose edges are
:class:`~repro.core.tensor.Tensor` handles. Construction follows the
TF 1.x deferred-execution model the paper uses: ops are added to a default
graph under ``with g.as_default():`` and executed later by a Session.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro import dtypes
from repro.core.tensor import Tensor, TensorShape, as_shape
from repro.errors import FailedPreconditionError, InvalidArgumentError, NotFoundError

__all__ = [
    "Graph",
    "Operation",
    "get_default_graph",
    "reset_default_graph",
    "GraphKeys",
    "device",
]


class GraphKeys:
    """Well-known collection names (mirrors ``tf.GraphKeys``)."""

    GLOBAL_VARIABLES = "variables"
    LOCAL_VARIABLES = "local_variables"
    QUEUE_RUNNERS = "queue_runners"
    INIT_OP = "init_op"
    SAVERS = "savers"


class Operation:
    """A node in the dataflow graph.

    Attributes:
        graph: owning :class:`Graph`.
        name: unique name within the graph.
        type: op type string (e.g. ``"MatMul"``); selects the kernel.
        inputs: data-input tensors.
        control_inputs: ops that must run before this one.
        device: (possibly partial) device specification string.
        attrs: static attributes consumed by the kernel.
        outputs: produced tensors.
    """

    __slots__ = (
        "graph",
        "name",
        "type",
        "inputs",
        "control_inputs",
        "device",
        "attrs",
        "outputs",
        "node_id",
    )

    def __init__(
        self,
        graph: "Graph",
        name: str,
        op_type: str,
        inputs: Sequence[Tensor],
        control_inputs: Sequence["Operation"],
        device: str,
        attrs: dict[str, Any],
        output_specs: Sequence[tuple[dtypes.DType, TensorShape]],
        node_id: int,
    ):
        self.graph = graph
        self.name = name
        self.type = op_type
        self.inputs = tuple(inputs)
        self.control_inputs = tuple(control_inputs)
        self.device = device
        self.attrs = dict(attrs)
        self.node_id = node_id
        self.outputs = tuple(
            Tensor(self, i, dt, shape) for i, (dt, shape) in enumerate(output_specs)
        )

    def get_attr(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def __repr__(self) -> str:
        return f"<Operation {self.name!r} type={self.type} device={self.device!r}>"

    __hash__ = object.__hash__


class Graph:
    """A dataflow graph plus its construction-time context stacks."""

    def __init__(self, seed: Optional[int] = None):
        self._nodes: dict[str, Operation] = {}
        self._node_order: list[Operation] = []
        self._names_in_use: dict[str, int] = {}
        self._name_stack: str = ""
        self._device_stack: list[str] = []
        self._control_dep_stack: list[tuple[Operation, ...]] = []
        self._collections: dict[str, list] = {}
        self._finalized = False
        self._next_id = 0
        self.seed = seed
        # Monotonic version, bumped on each added op; lets sessions detect
        # graph growth between runs.
        self.version = 0

    # -- default-graph management -------------------------------------------
    def as_default(self):
        return _default_graph_stack.get_controller(self)

    # -- scopes ---------------------------------------------------------------
    @contextlib.contextmanager
    def device(self, device_spec: Optional[str]):
        """Pin ops created in this scope to ``device_spec``.

        ``None`` clears the device for the scope (TF semantics).
        """
        self._device_stack.append(device_spec if device_spec is not None else "")
        try:
            yield
        finally:
            self._device_stack.pop()

    @contextlib.contextmanager
    def name_scope(self, name: str):
        if not name:
            raise InvalidArgumentError("name_scope requires a non-empty name")
        old = self._name_stack
        scoped = f"{old}/{name}" if old else name
        # Uniquify the scope itself so two identical with-blocks don't
        # collide. The candidate is already fully qualified, so bypass the
        # prefix logic of unique_name.
        count = self._names_in_use.get(scoped, 0)
        self._names_in_use[scoped] = count + 1
        if count:
            while f"{scoped}_{count}" in self._names_in_use:
                count += 1
            scoped = f"{scoped}_{count}"
            self._names_in_use[scoped] = 1
        self._name_stack = scoped
        try:
            yield scoped + "/"
        finally:
            self._name_stack = old

    @contextlib.contextmanager
    def control_dependencies(self, ops: Iterable[Any]):
        deps = []
        for item in ops:
            if isinstance(item, Tensor):
                deps.append(item.op)
            elif isinstance(item, Operation):
                deps.append(item)
            else:
                raise InvalidArgumentError(
                    f"control_dependencies expects ops/tensors, got {item!r}"
                )
        self._control_dep_stack.append(tuple(deps))
        try:
            yield
        finally:
            self._control_dep_stack.pop()

    @property
    def current_device(self) -> str:
        for spec in reversed(self._device_stack):
            return spec
        return ""

    # -- naming ----------------------------------------------------------------
    def unique_name(self, base: str, mark_as_used: bool = True) -> str:
        full = f"{self._name_stack}/{base}" if self._name_stack else base
        count = self._names_in_use.get(full, 0)
        if mark_as_used:
            self._names_in_use[full] = count + 1
        if count == 0:
            return full
        # Find the next free suffixed name.
        while f"{full}_{count}" in self._names_in_use:
            count += 1
        name = f"{full}_{count}"
        if mark_as_used:
            self._names_in_use[name] = 1
        return name

    # -- op construction ---------------------------------------------------------
    def create_op(
        self,
        op_type: str,
        inputs: Sequence[Tensor],
        output_specs: Sequence[tuple[dtypes.DType, Any]],
        attrs: Optional[dict[str, Any]] = None,
        name: Optional[str] = None,
        device: Optional[str] = None,
    ) -> Operation:
        """Add an operation to the graph and return it."""
        if self._finalized:
            raise FailedPreconditionError(
                "Graph is finalized and cannot be modified"
            )
        for tensor in inputs:
            if not isinstance(tensor, Tensor):
                raise InvalidArgumentError(
                    f"Graph inputs must be Tensors, got {tensor!r} "
                    f"(use ops.constant to wrap python values)"
                )
            if tensor.graph is not self:
                raise InvalidArgumentError(
                    f"Input {tensor.name} belongs to a different graph"
                )
        op_name = self.unique_name(name or op_type)
        if device is None:
            device = self.current_device
        control_inputs: list[Operation] = []
        seen: set[int] = set()
        for frame in self._control_dep_stack:
            for dep in frame:
                if id(dep) not in seen:
                    seen.add(id(dep))
                    control_inputs.append(dep)
        specs = [(dtypes.as_dtype(dt), as_shape(shape)) for dt, shape in (output_specs or [])]
        op = Operation(
            graph=self,
            name=op_name,
            op_type=op_type,
            inputs=inputs,
            control_inputs=control_inputs,
            device=device,
            attrs=attrs or {},
            output_specs=specs,
            node_id=self._next_id,
        )
        self._next_id += 1
        self._nodes[op_name] = op
        self._node_order.append(op)
        self.version += 1
        return op

    # -- lookup -----------------------------------------------------------------
    @property
    def operations(self) -> list[Operation]:
        return list(self._node_order)

    def get_operation_by_name(self, name: str) -> Operation:
        try:
            return self._nodes[name]
        except KeyError:
            raise NotFoundError(f"No operation named {name!r} in graph") from None

    def get_tensor_by_name(self, name: str) -> Tensor:
        if ":" not in name:
            raise InvalidArgumentError(
                f"Tensor names have the form 'op:index', got {name!r}"
            )
        op_name, _, index_str = name.rpartition(":")
        op = self.get_operation_by_name(op_name)
        try:
            index = int(index_str)
        except ValueError:
            raise InvalidArgumentError(f"Bad tensor index in {name!r}") from None
        if not 0 <= index < len(op.outputs):
            raise InvalidArgumentError(
                f"Operation {op_name!r} has {len(op.outputs)} outputs; "
                f"index {index} is out of range"
            )
        return op.outputs[index]

    # -- collections ----------------------------------------------------------
    def add_to_collection(self, key: str, value: Any) -> None:
        self._collections.setdefault(key, []).append(value)

    def get_collection(self, key: str) -> list:
        return list(self._collections.get(key, []))

    # -- lifecycle ---------------------------------------------------------------
    def finalize(self) -> None:
        """Freeze the graph; further op creation raises."""
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    def __repr__(self) -> str:
        return f"<Graph with {len(self._node_order)} operations>"


class _DefaultGraphStack(threading.local):
    """Thread-local stack of default graphs (mirrors TF's graph stack)."""

    def __init__(self):
        self.stack: list[Graph] = []
        self.global_default: Optional[Graph] = None

    @contextlib.contextmanager
    def get_controller(self, graph: Graph):
        self.stack.append(graph)
        try:
            yield graph
        finally:
            self.stack.pop()

    def get_default(self) -> Graph:
        if self.stack:
            return self.stack[-1]
        if self.global_default is None:
            self.global_default = Graph()
        return self.global_default

    def reset(self) -> None:
        if self.stack:
            raise FailedPreconditionError(
                "Cannot reset the default graph inside an as_default() scope"
            )
        self.global_default = Graph()


_default_graph_stack = _DefaultGraphStack()


def get_default_graph() -> Graph:
    """The innermost graph made default via ``as_default()`` (or the global)."""
    return _default_graph_stack.get_default()


def reset_default_graph() -> None:
    """Replace the global default graph with a fresh one."""
    _default_graph_stack.reset()


def device(device_spec: Optional[str]):
    """Pin ops created in this scope to ``device_spec``.

    Module-level form of :meth:`Graph.device` targeting the *current*
    default graph — inside a ``@repro.function`` trace that is the
    function's graph, so imperative code annotates placement the same
    way hand-built graph code does::

        with repro.device("/job:worker/task:0/device:gpu:0"):
            q = repro.matmul(a, p)
    """
    return get_default_graph().device(device_spec)


def convert_to_tensor(value: Any, dtype=None, name: str = "Const", graph: Optional[Graph] = None) -> Tensor:
    """Wrap python values / ndarrays as constant tensors; pass Tensors through."""
    if isinstance(value, Tensor):
        if dtype is not None and value.dtype != dtypes.as_dtype(dtype):
            from repro.core.ops import math_ops

            return math_ops.cast(value, dtype)
        return value
    from repro.core.ops import array_ops

    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtypes.as_dtype(dtype).np_dtype)
    elif arr.dtype == np.float64 and not isinstance(value, np.ndarray):
        # Python floats default to float32, matching TF's literal handling.
        arr = arr.astype(np.float32)
    elif arr.dtype == np.int64 and not isinstance(value, np.ndarray):
        arr = arr.astype(np.int32)
    return array_ops.constant(arr, name=name, graph=graph)
