"""Shared helpers for op builders and kernels."""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro import dtypes
from repro.core.graph import Graph, get_default_graph
from repro.core.tensor import SymbolicValue, Tensor, TensorShape
from repro.errors import InvalidArgumentError

__all__ = [
    "to_tensor",
    "broadcast_static_shapes",
    "any_symbolic",
    "runtime_shape",
    "runtime_spec",
    "elementwise_spec",
    "make_symbolic",
    "graph_of",
]


def graph_of(*tensors, graph: Optional[Graph] = None) -> Graph:
    """The graph new ops should join: explicit > inferred from inputs > default."""
    if graph is not None:
        return graph
    for t in tensors:
        if isinstance(t, Tensor):
            return t.graph
    return get_default_graph()


def to_tensor(value: Any, dtype=None, graph: Optional[Graph] = None) -> Tensor:
    """Coerce python values / ndarrays to constant tensors in ``graph``."""
    from repro.core.graph import convert_to_tensor

    return convert_to_tensor(value, dtype=dtype, graph=graph)


def broadcast_static_shapes(a: TensorShape, b: TensorShape) -> TensorShape:
    """NumPy broadcasting over partially-known shapes."""
    if a.dims is None or b.dims is None:
        return TensorShape(None)
    ra, rb = len(a.dims), len(b.dims)
    rank = max(ra, rb)
    # Missing leading dimensions broadcast as size 1 (NumPy semantics),
    # so the result dim is the other side's — statically known or not.
    dims_a = (1,) * (rank - ra) + a.dims
    dims_b = (1,) * (rank - rb) + b.dims
    out = []
    for da, db in zip(dims_a, dims_b):
        if da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        elif da is None:
            out.append(db if db is not None and db != 1 else None)
        elif db is None:
            out.append(da if da != 1 else None)
        elif da == db:
            out.append(da)
        else:
            raise InvalidArgumentError(
                f"Shapes {a} and {b} are not broadcast-compatible"
            )
    return TensorShape(out)


# -- runtime-value helpers (used by kernels) ---------------------------------

def any_symbolic(values: Sequence[Any]) -> bool:
    return any(isinstance(v, SymbolicValue) for v in values)


def runtime_shape(value: Any) -> tuple[int, ...]:
    if isinstance(value, SymbolicValue):
        return value.shape
    return tuple(np.asarray(value).shape)


def runtime_spec(value: Any) -> SymbolicValue:
    return SymbolicValue.of(value)


def make_symbolic(shape: Sequence[int], dtype) -> SymbolicValue:
    return SymbolicValue(shape, dtypes.as_dtype(dtype))


def elementwise_spec(values: Sequence[Any], dtype=None) -> SymbolicValue:
    """Broadcasted result spec of an elementwise op over runtime values."""
    shape = runtime_shape(values[0])
    for v in values[1:]:
        shape = np.broadcast_shapes(shape, runtime_shape(v))
    if dtype is None:
        dtype = dtypes.result_dtype(
            *[runtime_spec(v).dtype for v in values]
        )
    return SymbolicValue(shape, dtype)
