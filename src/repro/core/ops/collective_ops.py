"""First-class collective ops: allreduce, reduce-scatter, allgather, broadcast.

The paper's discussion section argues for "an MPI communication backend
for functions such as allreduce without needing the use of dedicated
servers" (Horovod, the Cray ML plugin). These builders promote the ring
collectives of :mod:`repro.runtime.collective` into the graph: one
``CollectiveAllReduce`` op has ``W`` inputs (one per rank, each typically
living on a different worker's device) and ``W`` outputs (one reduced
copy per rank, colocated with that rank's input).

Under a Session the partitioner *lowers* the op into ``W`` per-rank plan
items (see ``build_plan``): each leg sits on its rank's device, receives
its rank's input through the ordinary ``route_value`` send/recv
machinery, and the executor drives the shared ring schedule over the
simulated transports — so placement, the plan-time optimizer, the plan
cache, the dependency-counting dispatcher and ``RunMetadata`` all apply,
and the op's simulated time is the standalone ring generator's time by
construction.

Eagerly (and under ``run_functions_eagerly``) the kernels below execute
the same canonical arithmetic directly — concrete sums accumulate in
rank order starting from zeros, exactly as the ring's concrete path
does, so the three frontends produce byte-identical values.

Every builder takes an ``algorithm=`` attr selecting the communication
schedule (``"auto"`` — resolved per payload/world size at lowering time
— or any algorithm the strategy registry of
:mod:`repro.runtime.collective` knows for the op type, e.g. ``"ring"`` /
``"tree"`` for allreduce). The algorithm never changes the produced
bytes, only the simulated communication schedule; eager execution
ignores it entirely (there is no simulated network to schedule on).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.kernels.registry import Cost, declare_op_constraint, register_kernel
from repro.core.ops.common import any_symbolic, make_symbolic, runtime_spec, to_tensor
from repro.core.tensor import Tensor, TensorShape
from repro.errors import InvalidArgumentError
from repro.runtime.collective import registered_algorithms

__all__ = [
    "COLLECTIVE_OP_TYPES",
    "all_reduce",
    "reduce_scatter",
    "all_gather",
    "broadcast",
]

# Op types the partitioner lowers into per-rank schedule legs.
COLLECTIVE_OP_TYPES = frozenset(
    {
        "CollectiveAllReduce",
        "CollectiveReduceScatter",
        "CollectiveAllGather",
        "CollectiveBroadcast",
    }
)


def _common_attrs(world: int, devices: Optional[Sequence[str]],
                  protocol: Optional[str], algorithm: str,
                  op_type: str) -> dict:
    if devices is not None:
        devices = tuple(str(d) for d in devices)
        if len(devices) != world:
            raise InvalidArgumentError(
                f"collective got {world} ranks but {len(devices)} devices"
            )
    if algorithm != "auto" and algorithm not in registered_algorithms(op_type):
        raise InvalidArgumentError(
            f"{op_type} has no {algorithm!r} algorithm; pick 'auto' or one "
            f"of {list(registered_algorithms(op_type))}"
        )
    return {
        "world": world,
        "devices": devices,
        "protocol": protocol,
        "algorithm": algorithm,
    }


def _rank_tensors(values: Sequence[Any], what: str) -> list[Tensor]:
    if not isinstance(values, (list, tuple)) or not values:
        raise InvalidArgumentError(
            f"{what} expects a non-empty list of per-rank tensors"
        )
    tensors = [to_tensor(v) for v in values]
    graph = tensors[0].graph
    for t in tensors[1:]:
        if t.graph is not graph:
            raise InvalidArgumentError(
                f"{what} ranks span different graphs"
            )
        if t.dtype != tensors[0].dtype:
            raise InvalidArgumentError(
                f"{what} dtype mismatch: {tensors[0].dtype.name} vs "
                f"{t.dtype.name}"
            )
    return tensors


def all_reduce(
    values: Sequence[Any],
    devices: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    algorithm: str = "auto",
    name: str = "CollectiveAllReduce",
) -> list[Tensor]:
    """Sum-allreduce one tensor per rank; returns one reduced copy per rank.

    Args:
        values: per-rank addends of equal shape and dtype (the rank order
            is the schedule order).
        devices: optional explicit per-rank device strings; by default
            each rank's leg colocates with its input's producer — for
            chained collectives, with the upstream *leg* feeding it.
        protocol: bulk transport override for the collective traffic
            (defaults to the session's data protocol).
        algorithm: ``"auto"`` (lowering picks ring vs tree per payload
            and world size), ``"ring"`` (bandwidth-optimal) or ``"tree"``
            (latency-optimal recursive halving/doubling). Values are
            byte-identical either way; only the simulated schedule
            differs. ``RunMetadata.collective_algorithms`` records the
            resolved choice.

    Returns:
        One tensor per rank holding the full sum, colocated with that
        rank's leg. Concrete values accumulate in rank order starting
        from zeros in every frontend, so results are byte-identical
        whether the op runs eagerly, traced, or schedule-lowered.

    Not differentiable: ``repro.gradients`` raises if asked to
    differentiate *through* a collective. Sum per-rank gradients by
    calling ``all_reduce`` on the ``gradients()`` outputs instead (the
    Horovod pattern; see ``repro.apps.sgd``).
    """
    tensors = _rank_tensors(values, "all_reduce")
    shape = tensors[0].shape
    for t in tensors[1:]:
        shape = shape.merge_with(t.shape)
    op = tensors[0].graph.create_op(
        "CollectiveAllReduce",
        inputs=tensors,
        output_specs=[(tensors[0].dtype, shape)] * len(tensors),
        attrs=_common_attrs(len(tensors), devices, protocol, algorithm,
                            "CollectiveAllReduce"),
        name=name,
    )
    return list(op.outputs)


def reduce_scatter(
    values: Sequence[Any],
    devices: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    algorithm: str = "auto",
    name: str = "CollectiveReduceScatter",
) -> list[Tensor]:
    """Sum-reduce one tensor per rank, scattering axis-0 blocks back.

    The ring allreduce's first half standalone: rank ``r`` receives only
    block ``r`` of the summed buffer (axis 0 cut into ``world`` equal
    blocks), having moved ``(W-1)/W`` of the buffer instead of the
    allreduce's ``2 (W-1)/W``. The primitive for sharded-state updates
    that never need the full result on every rank.

    Args:
        values: per-rank addends of equal shape and dtype, rank >= 1,
            leading dimension divisible by the number of ranks.
        devices: optional explicit per-rank device strings; by default
            each rank's leg colocates with its input's producer.
        protocol: bulk transport override for the collective traffic.
        algorithm: ``"auto"`` or ``"ring"`` (the only registered
            schedule today).

    Returns:
        One tensor per rank holding that rank's block of the canonical
        rank-order sum, colocated with the rank's leg. Like
        :func:`all_reduce`, not differentiable.
    """
    tensors = _rank_tensors(values, "reduce_scatter")
    world = len(tensors)
    shape = tensors[0].shape
    for t in tensors[1:]:
        shape = shape.merge_with(t.shape)
    if shape.rank == 0:
        raise InvalidArgumentError(
            "reduce_scatter needs tensors of rank >= 1 (got a scalar)"
        )
    if shape.rank is None:
        out_shape = TensorShape(None)
    else:
        lead = shape[0]
        if lead is not None and lead % world != 0:
            raise InvalidArgumentError(
                f"reduce_scatter needs a leading dimension divisible by "
                f"the world size: {lead} rows across {world} ranks"
            )
        out_shape = TensorShape(
            [None if lead is None else lead // world, *shape.dims[1:]]
        )
    op = tensors[0].graph.create_op(
        "CollectiveReduceScatter",
        inputs=tensors,
        output_specs=[(tensors[0].dtype, out_shape)] * world,
        attrs=_common_attrs(world, devices, protocol, algorithm,
                            "CollectiveReduceScatter"),
        name=name,
    )
    return list(op.outputs)


def all_gather(
    values: Sequence[Any],
    devices: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    algorithm: str = "auto",
    name: str = "CollectiveAllGather",
) -> list[Tensor]:
    """Allgather per-rank tensors (concatenated along axis 0) to every rank.

    Args:
        values: per-rank blocks of rank >= 1, equal dtype and trailing
            dims (leading dims may differ — uneven blocks are fine; the
            rank order is the concatenation and ring order).
        devices: optional explicit per-rank device strings; by default
            each rank's leg colocates with its input's producer.
        protocol: bulk transport override for the ring traffic.
        algorithm: ``"auto"`` or ``"ring"`` (the only registered
            schedule today).

    Returns:
        One tensor per rank holding the full axis-0 concatenation,
        colocated with that rank's leg. Like :func:`all_reduce`, not
        differentiable — gather forward values, not gradients.
    """
    tensors = _rank_tensors(values, "all_gather")
    lead: Optional[int] = 0
    trailing: Optional[TensorShape] = None
    for t in tensors:
        rank = t.shape.rank
        if rank == 0:
            raise InvalidArgumentError(
                "all_gather needs tensors of rank >= 1 (got a scalar)"
            )
        if rank is None:
            lead, trailing = None, None
            break
        tail = t.shape[1:]
        trailing = tail if trailing is None else trailing.merge_with(tail)
        head = t.shape[0]
        lead = None if (lead is None or head is None) else lead + head
    if trailing is None:
        out_shape = TensorShape(None)
    else:
        out_shape = TensorShape([lead]).concatenate(trailing)
    op = tensors[0].graph.create_op(
        "CollectiveAllGather",
        inputs=tensors,
        output_specs=[(tensors[0].dtype, out_shape)] * len(tensors),
        attrs=_common_attrs(len(tensors), devices, protocol, algorithm,
                            "CollectiveAllGather"),
        name=name,
    )
    return list(op.outputs)


def broadcast(
    value: Any,
    world: Optional[int] = None,
    devices: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    algorithm: str = "auto",
    name: str = "CollectiveBroadcast",
) -> list[Tensor]:
    """Broadcast ``value`` (rank 0, the root) to ``world`` ranks.

    One of ``world``/``devices`` must be given; with ``devices`` the root
    is ``devices[0]`` and every rank's copy lands on its device.

    Placement constraint: under a Session, ``world > 1`` **requires**
    the explicit ``devices=`` list. Unlike :func:`all_reduce` /
    :func:`all_gather` — one input per rank, so every leg has a
    producer to colocate with — a broadcast has a single input, and
    colocating all legs with the root would silently model a ``W``-way
    broadcast as zero communication. The partitioner raises with that
    fix spelled out (pass ``devices=[...]``, or colocate inputs by
    expressing the exchange through the all-rank collectives). Eager
    execution accepts a bare ``world=``: there is no placement.

    Returns:
        ``world`` copies of ``value``, one per rank.
    """
    if devices is not None:
        if world is not None and world != len(devices):
            raise InvalidArgumentError(
                f"broadcast got world={world} but {len(devices)} devices"
            )
        world = len(devices)
    if world is None or world < 1:
        raise InvalidArgumentError(
            "broadcast needs world >= 1 (or an explicit devices list)"
        )
    tensor = to_tensor(value)
    op = tensor.graph.create_op(
        "CollectiveBroadcast",
        inputs=[tensor],
        output_specs=[(tensor.dtype, tensor.shape)] * world,
        attrs=_common_attrs(world, devices, protocol, algorithm,
                            "CollectiveBroadcast"),
        name=name,
    )
    return list(op.outputs)


# ---------------------------------------------------------------------------
# kernels (direct execution: eager / run_functions_eagerly)
# ---------------------------------------------------------------------------
#
# Under a Session these ops never reach kernel dispatch — the partitioner
# lowers them into per-rank ring legs — so the kernels only implement the
# immediate-execution semantics. They are deliberately *not* ``pure``
# (CSE/folding must not merge or pre-evaluate communication) and not
# ``graph_only`` (the arithmetic is well-defined without a simulator).


def _validate_allreduce_inputs(specs) -> None:
    for spec in specs[1:]:
        if spec.shape != specs[0].shape or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allreduce buffers disagree: {specs[0]} vs {spec}"
            )


@register_kernel("CollectiveAllReduce")
def _all_reduce_kernel(op, inputs, ctx):
    specs = [runtime_spec(v) for v in inputs]
    _validate_allreduce_inputs(specs)
    world = len(inputs)
    nbytes = sum(s.nbytes for s in specs)
    cost = Cost(
        flops=(world - 1) * specs[0].size,
        mem_bytes=nbytes + world * specs[0].nbytes,
        kind="compute",
    )
    if any_symbolic(inputs):
        return [
            make_symbolic(specs[0].shape, specs[0].dtype) for _ in inputs
        ], cost
    # Canonical accumulation order (zeros, then rank 0, 1, ...): matches
    # the ring generator's concrete path byte for byte.
    total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
    for value in inputs:
        total = total + np.asarray(value)
    return [total.copy() for _ in inputs], cost


@register_kernel("CollectiveReduceScatter")
def _reduce_scatter_kernel(op, inputs, ctx):
    specs = [runtime_spec(v) for v in inputs]
    _validate_allreduce_inputs(specs)
    world = len(inputs)
    if specs[0].ndim == 0:
        raise InvalidArgumentError(
            "reduce_scatter needs tensors of rank >= 1 (got a scalar)"
        )
    if specs[0].shape[0] % world != 0:
        raise InvalidArgumentError(
            f"reduce_scatter needs a leading dimension divisible by the "
            f"world size: {specs[0].shape[0]} rows across {world} ranks"
        )
    rows = specs[0].shape[0] // world
    block_shape = (rows, *specs[0].shape[1:])
    nbytes = sum(s.nbytes for s in specs)
    cost = Cost(
        flops=(world - 1) * specs[0].size,
        mem_bytes=nbytes + specs[0].nbytes,
        kind="compute",
    )
    if any_symbolic(inputs):
        return [
            make_symbolic(block_shape, specs[0].dtype) for _ in inputs
        ], cost
    # Canonical accumulation order (zeros, then rank 0, 1, ...): the sum
    # matches the ring generator and the allreduce byte for byte; rank r
    # keeps block r.
    total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
    for value in inputs:
        total = total + np.asarray(value)
    return [
        np.ascontiguousarray(total[rank * rows:(rank + 1) * rows])
        for rank in range(world)
    ], cost


@register_kernel("CollectiveAllGather")
def _all_gather_kernel(op, inputs, ctx):
    specs = [runtime_spec(v) for v in inputs]
    for spec in specs[1:]:
        if (
            spec.ndim != specs[0].ndim
            or spec.ndim == 0
            or spec.shape[1:] != specs[0].shape[1:]
            or spec.dtype != specs[0].dtype
        ):
            raise InvalidArgumentError(
                f"allgather buffers disagree beyond axis 0: "
                f"{specs[0]} vs {spec}"
            )
    world = len(inputs)
    nbytes = sum(s.nbytes for s in specs)
    cost = Cost(mem_bytes=(1 + world) * nbytes, kind="memcpy")
    if any_symbolic(inputs):
        out_shape = (sum(s.shape[0] for s in specs), *specs[0].shape[1:])
        return [
            make_symbolic(out_shape, specs[0].dtype) for _ in inputs
        ], cost
    full = np.concatenate([np.asarray(v) for v in inputs], axis=0)
    return [full.copy() for _ in inputs], cost


@register_kernel("CollectiveBroadcast")
def _broadcast_kernel(op, inputs, ctx):
    (value,) = inputs
    world = op.get_attr("world")
    spec = runtime_spec(value)
    cost = Cost(mem_bytes=world * spec.nbytes, kind="memcpy")
    if any_symbolic(inputs):
        return [make_symbolic(spec.shape, spec.dtype) for _ in range(world)], cost
    arr = np.asarray(value)
    return [arr.copy() for _ in range(world)], cost


# ---------------------------------------------------------------------------
# generation contracts (consumed by the repro.fuzz operator catalog)
# ---------------------------------------------------------------------------

_NUMERIC = ("float32", "float64", "int32")

declare_op_constraint("CollectiveAllReduce", builder="all_reduce",
                      arity=(2, 8), dtypes=_NUMERIC, shape_rule="collective")
declare_op_constraint("CollectiveReduceScatter", builder="reduce_scatter",
                      arity=(2, 8), dtypes=_NUMERIC, shape_rule="collective")
declare_op_constraint("CollectiveAllGather", builder="all_gather",
                      arity=(2, 8), dtypes=_NUMERIC, shape_rule="collective")
declare_op_constraint("CollectiveBroadcast", builder="broadcast",
                      arity=(1, 1), dtypes=_NUMERIC, shape_rule="collective")
