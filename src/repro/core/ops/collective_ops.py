"""First-class collective ops: allreduce, allgather, broadcast.

The paper's discussion section argues for "an MPI communication backend
for functions such as allreduce without needing the use of dedicated
servers" (Horovod, the Cray ML plugin). These builders promote the ring
collectives of :mod:`repro.runtime.collective` into the graph: one
``CollectiveAllReduce`` op has ``W`` inputs (one per rank, each typically
living on a different worker's device) and ``W`` outputs (one reduced
copy per rank, colocated with that rank's input).

Under a Session the partitioner *lowers* the op into ``W`` per-rank plan
items (see ``build_plan``): each leg sits on its rank's device, receives
its rank's input through the ordinary ``route_value`` send/recv
machinery, and the executor drives the shared ring schedule over the
simulated transports — so placement, the plan-time optimizer, the plan
cache, the dependency-counting dispatcher and ``RunMetadata`` all apply,
and the op's simulated time is the standalone ring generator's time by
construction.

Eagerly (and under ``run_functions_eagerly``) the kernels below execute
the same canonical arithmetic directly — concrete sums accumulate in
rank order starting from zeros, exactly as the ring's concrete path
does, so the three frontends produce byte-identical values.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.kernels.registry import Cost, register_kernel
from repro.core.ops.common import any_symbolic, make_symbolic, runtime_spec, to_tensor
from repro.core.tensor import Tensor, TensorShape
from repro.errors import InvalidArgumentError

__all__ = [
    "COLLECTIVE_OP_TYPES",
    "all_reduce",
    "all_gather",
    "broadcast",
]

# Op types the partitioner lowers into per-rank ring legs.
COLLECTIVE_OP_TYPES = frozenset(
    {"CollectiveAllReduce", "CollectiveAllGather", "CollectiveBroadcast"}
)


def _common_attrs(world: int, devices: Optional[Sequence[str]],
                  protocol: Optional[str]) -> dict:
    if devices is not None:
        devices = tuple(str(d) for d in devices)
        if len(devices) != world:
            raise InvalidArgumentError(
                f"collective got {world} ranks but {len(devices)} devices"
            )
    return {"world": world, "devices": devices, "protocol": protocol}


def _rank_tensors(values: Sequence[Any], what: str) -> list[Tensor]:
    if not isinstance(values, (list, tuple)) or not values:
        raise InvalidArgumentError(
            f"{what} expects a non-empty list of per-rank tensors"
        )
    tensors = [to_tensor(v) for v in values]
    graph = tensors[0].graph
    for t in tensors[1:]:
        if t.graph is not graph:
            raise InvalidArgumentError(
                f"{what} ranks span different graphs"
            )
        if t.dtype != tensors[0].dtype:
            raise InvalidArgumentError(
                f"{what} dtype mismatch: {tensors[0].dtype.name} vs "
                f"{t.dtype.name}"
            )
    return tensors


def all_reduce(
    values: Sequence[Any],
    devices: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    name: str = "CollectiveAllReduce",
) -> list[Tensor]:
    """Sum-allreduce one tensor per rank; returns one reduced copy per rank.

    Args:
        values: per-rank addends of equal shape and dtype (the rank order
            is the ring order).
        devices: optional explicit per-rank device strings; by default
            each rank's leg colocates with its input's producer — for
            chained collectives, with the upstream *leg* feeding it.
        protocol: bulk transport override for the ring traffic (defaults
            to the session's data protocol).

    Returns:
        One tensor per rank holding the full sum, colocated with that
        rank's leg. Concrete values accumulate in rank order starting
        from zeros in every frontend, so results are byte-identical
        whether the op runs eagerly, traced, or ring-lowered.

    Not differentiable: ``repro.gradients`` raises if asked to
    differentiate *through* a collective. Sum per-rank gradients by
    calling ``all_reduce`` on the ``gradients()`` outputs instead (the
    Horovod pattern; see ``repro.apps.sgd``).
    """
    tensors = _rank_tensors(values, "all_reduce")
    shape = tensors[0].shape
    for t in tensors[1:]:
        shape = shape.merge_with(t.shape)
    op = tensors[0].graph.create_op(
        "CollectiveAllReduce",
        inputs=tensors,
        output_specs=[(tensors[0].dtype, shape)] * len(tensors),
        attrs=_common_attrs(len(tensors), devices, protocol),
        name=name,
    )
    return list(op.outputs)


def all_gather(
    values: Sequence[Any],
    devices: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    name: str = "CollectiveAllGather",
) -> list[Tensor]:
    """Allgather per-rank tensors (concatenated along axis 0) to every rank.

    Args:
        values: per-rank blocks of rank >= 1, equal dtype and trailing
            dims (leading dims may differ — uneven blocks are fine; the
            rank order is the concatenation and ring order).
        devices: optional explicit per-rank device strings; by default
            each rank's leg colocates with its input's producer.
        protocol: bulk transport override for the ring traffic.

    Returns:
        One tensor per rank holding the full axis-0 concatenation,
        colocated with that rank's leg. Like :func:`all_reduce`, not
        differentiable — gather forward values, not gradients.
    """
    tensors = _rank_tensors(values, "all_gather")
    lead: Optional[int] = 0
    trailing: Optional[TensorShape] = None
    for t in tensors:
        rank = t.shape.rank
        if rank == 0:
            raise InvalidArgumentError(
                "all_gather needs tensors of rank >= 1 (got a scalar)"
            )
        if rank is None:
            lead, trailing = None, None
            break
        tail = t.shape[1:]
        trailing = tail if trailing is None else trailing.merge_with(tail)
        head = t.shape[0]
        lead = None if (lead is None or head is None) else lead + head
    if trailing is None:
        out_shape = TensorShape(None)
    else:
        out_shape = TensorShape([lead]).concatenate(trailing)
    op = tensors[0].graph.create_op(
        "CollectiveAllGather",
        inputs=tensors,
        output_specs=[(tensors[0].dtype, out_shape)] * len(tensors),
        attrs=_common_attrs(len(tensors), devices, protocol),
        name=name,
    )
    return list(op.outputs)


def broadcast(
    value: Any,
    world: Optional[int] = None,
    devices: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    name: str = "CollectiveBroadcast",
) -> list[Tensor]:
    """Broadcast ``value`` (rank 0, the root) to ``world`` ranks.

    One of ``world``/``devices`` must be given; with ``devices`` the root
    is ``devices[0]`` and every rank's copy lands on its device.

    Placement constraint: under a Session, ``world > 1`` **requires**
    the explicit ``devices=`` list. Unlike :func:`all_reduce` /
    :func:`all_gather` — one input per rank, so every leg has a
    producer to colocate with — a broadcast has a single input, and
    colocating all legs with the root would silently model a ``W``-way
    broadcast as zero communication. The partitioner raises with that
    fix spelled out (pass ``devices=[...]``, or colocate inputs by
    expressing the exchange through the all-rank collectives). Eager
    execution accepts a bare ``world=``: there is no placement.

    Returns:
        ``world`` copies of ``value``, one per rank.
    """
    if devices is not None:
        if world is not None and world != len(devices):
            raise InvalidArgumentError(
                f"broadcast got world={world} but {len(devices)} devices"
            )
        world = len(devices)
    if world is None or world < 1:
        raise InvalidArgumentError(
            "broadcast needs world >= 1 (or an explicit devices list)"
        )
    tensor = to_tensor(value)
    op = tensor.graph.create_op(
        "CollectiveBroadcast",
        inputs=[tensor],
        output_specs=[(tensor.dtype, tensor.shape)] * world,
        attrs=_common_attrs(world, devices, protocol),
        name=name,
    )
    return list(op.outputs)


# ---------------------------------------------------------------------------
# kernels (direct execution: eager / run_functions_eagerly)
# ---------------------------------------------------------------------------
#
# Under a Session these ops never reach kernel dispatch — the partitioner
# lowers them into per-rank ring legs — so the kernels only implement the
# immediate-execution semantics. They are deliberately *not* ``pure``
# (CSE/folding must not merge or pre-evaluate communication) and not
# ``graph_only`` (the arithmetic is well-defined without a simulator).


def _validate_allreduce_inputs(specs) -> None:
    for spec in specs[1:]:
        if spec.shape != specs[0].shape or spec.dtype != specs[0].dtype:
            raise InvalidArgumentError(
                f"allreduce buffers disagree: {specs[0]} vs {spec}"
            )


@register_kernel("CollectiveAllReduce")
def _all_reduce_kernel(op, inputs, ctx):
    specs = [runtime_spec(v) for v in inputs]
    _validate_allreduce_inputs(specs)
    world = len(inputs)
    nbytes = sum(s.nbytes for s in specs)
    cost = Cost(
        flops=(world - 1) * specs[0].size,
        mem_bytes=nbytes + world * specs[0].nbytes,
        kind="compute",
    )
    if any_symbolic(inputs):
        return [
            make_symbolic(specs[0].shape, specs[0].dtype) for _ in inputs
        ], cost
    # Canonical accumulation order (zeros, then rank 0, 1, ...): matches
    # the ring generator's concrete path byte for byte.
    total = np.zeros(specs[0].shape, dtype=specs[0].dtype.np_dtype)
    for value in inputs:
        total = total + np.asarray(value)
    return [total.copy() for _ in inputs], cost


@register_kernel("CollectiveAllGather")
def _all_gather_kernel(op, inputs, ctx):
    specs = [runtime_spec(v) for v in inputs]
    for spec in specs[1:]:
        if (
            spec.ndim != specs[0].ndim
            or spec.ndim == 0
            or spec.shape[1:] != specs[0].shape[1:]
            or spec.dtype != specs[0].dtype
        ):
            raise InvalidArgumentError(
                f"allgather buffers disagree beyond axis 0: "
                f"{specs[0]} vs {spec}"
            )
    world = len(inputs)
    nbytes = sum(s.nbytes for s in specs)
    cost = Cost(mem_bytes=(1 + world) * nbytes, kind="memcpy")
    if any_symbolic(inputs):
        out_shape = (sum(s.shape[0] for s in specs), *specs[0].shape[1:])
        return [
            make_symbolic(out_shape, specs[0].dtype) for _ in inputs
        ], cost
    full = np.concatenate([np.asarray(v) for v in inputs], axis=0)
    return [full.copy() for _ in inputs], cost


@register_kernel("CollectiveBroadcast")
def _broadcast_kernel(op, inputs, ctx):
    (value,) = inputs
    world = op.get_attr("world")
    spec = runtime_spec(value)
    cost = Cost(mem_bytes=world * spec.nbytes, kind="memcpy")
    if any_symbolic(inputs):
        return [make_symbolic(spec.shape, spec.dtype) for _ in range(world)], cost
    arr = np.asarray(value)
    return [arr.copy() for _ in range(world)], cost
