"""Random tensor generators with deterministic, counter-based streams.

Kernels use NumPy's Philox bit generator keyed by
``(graph_seed, op_seed)`` with a per-op execution counter, so re-running a
program reproduces the same values while successive ``session.run`` calls
still draw fresh numbers — the same contract TF's stateful random ops give.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import dtypes
from repro.core.graph import Graph
from repro.core.kernels.registry import Cost, register_kernel
from repro.core.ops.common import graph_of, make_symbolic
from repro.core.tensor import Tensor, as_shape
from repro.errors import InvalidArgumentError

__all__ = ["random_uniform", "random_normal"]


def _random_op(op_type: str, shape: Sequence[int], dtype, seed: Optional[int],
               attrs: dict, name: str, graph: Optional[Graph]) -> Tensor:
    g = graph_of(graph=graph)
    target = dtypes.as_dtype(dtype)
    if not target.is_floating:
        raise InvalidArgumentError(
            f"{op_type} supports floating dtypes, got {target.name}"
        )
    static = as_shape(list(shape))
    op = g.create_op(
        op_type,
        inputs=[],
        output_specs=[(target, static)],
        attrs={"shape": static.as_tuple(), "seed": seed, **attrs},
        name=name,
    )
    return op.outputs[0]


def random_uniform(shape: Sequence[int], minval: float = 0.0, maxval: float = 1.0,
                   dtype=dtypes.float32, seed: Optional[int] = None,
                   name: str = "RandomUniform", graph: Optional[Graph] = None) -> Tensor:
    """Uniform samples in ``[minval, maxval)``."""
    return _random_op(
        "RandomUniform", shape, dtype, seed,
        {"minval": float(minval), "maxval": float(maxval)}, name, graph,
    )


def random_normal(shape: Sequence[int], mean: float = 0.0, stddev: float = 1.0,
                  dtype=dtypes.float32, seed: Optional[int] = None,
                  name: str = "RandomNormal", graph: Optional[Graph] = None) -> Tensor:
    """Normal samples with the given moments."""
    return _random_op(
        "RandomNormal", shape, dtype, seed,
        {"mean": float(mean), "stddev": float(stddev)}, name, graph,
    )


def _make_rng(op, ctx) -> np.random.Generator:
    graph_seed = ctx.graph_seed if ctx.graph_seed is not None else 0
    op_seed = op.get_attr("seed")
    if op_seed is None:
        # Stable per-op identity: the node id within the graph.
        op_seed = op.node_id + 1
    counter = ctx.resources.next_rng_counter(op.name)
    bitgen = np.random.Philox(
        key=np.array([graph_seed & 0xFFFFFFFFFFFFFFFF,
                      op_seed & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64),
        counter=np.array([counter, 0, 0, 0], dtype=np.uint64),
    )
    return np.random.Generator(bitgen)


def _random_cost(op) -> Cost:
    shape = op.get_attr("shape")
    n = 1
    for d in shape:
        n *= d
    esize = op.outputs[0].dtype.size
    # ~10 flops per Philox sample plus the output write.
    return Cost(flops=10.0 * n, mem_bytes=n * esize, kind="compute")


@register_kernel("RandomUniform", stateful=True)
def _random_uniform_kernel(op, inputs, ctx):
    cost = _random_cost(op)
    shape = op.get_attr("shape")
    dtype = op.outputs[0].dtype
    if ctx.symbolic:
        return [make_symbolic(shape, dtype)], cost
    rng = _make_rng(op, ctx)
    lo = op.get_attr("minval")
    hi = op.get_attr("maxval")
    out = rng.random(size=shape, dtype=np.float64) * (hi - lo) + lo
    return [out.astype(dtype.np_dtype)], cost


@register_kernel("RandomNormal", stateful=True)
def _random_normal_kernel(op, inputs, ctx):
    cost = _random_cost(op)
    shape = op.get_attr("shape")
    dtype = op.outputs[0].dtype
    if ctx.symbolic:
        return [make_symbolic(shape, dtype)], cost
    rng = _make_rng(op, ctx)
    out = rng.normal(loc=op.get_attr("mean"), scale=op.get_attr("stddev"), size=shape)
    return [out.astype(dtype.np_dtype)], cost
