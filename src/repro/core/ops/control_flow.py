"""Control-flow helpers: no-ops and grouping."""

from __future__ import annotations

from typing import Optional

from repro.core.graph import Graph, Operation, get_default_graph
from repro.core.kernels.registry import Cost, register_kernel
from repro.core.tensor import Tensor

__all__ = ["no_op", "group"]


def no_op(name: str = "NoOp", graph: Optional[Graph] = None) -> Operation:
    g = graph or get_default_graph()
    return g.create_op("NoOp", inputs=[], output_specs=[], name=name)


def group(*inputs, name: str = "group", graph: Optional[Graph] = None) -> Operation:
    """An op that completes only after every input op/tensor has run."""
    deps = []
    for item in inputs:
        if isinstance(item, Tensor):
            deps.append(item.op)
        elif isinstance(item, Operation):
            deps.append(item)
        else:
            raise TypeError(f"group expects ops/tensors, got {item!r}")
    g = graph or (deps[0].graph if deps else get_default_graph())
    with g.control_dependencies(deps):
        return g.create_op("NoOp", inputs=[], output_specs=[], name=name)


@register_kernel("NoOp", inline=True)
def _no_op_kernel(op, inputs, ctx):
    return [], Cost.none()
