"""FIFO queues — the data-driven coordination primitive of the paper.

A :class:`FIFOQueue` lives on one device (typically a reducer/merger task).
``enqueue``/``dequeue`` ops are *colocated with the queue*; a producer on a
different task therefore sends its tensors across the network to the
queue's partition (via ``_Send``/``_Recv``), which is precisely how the
paper's workers push tile products to reducers (Figs. 4–6).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro import dtypes
from repro.core.graph import Graph, Operation, get_default_graph
from repro.core.kernels.queue_runtime import SimQueue
from repro.core.kernels.registry import Cost, register_kernel
from repro.core.ops.common import runtime_spec, to_tensor
from repro.core.tensor import Tensor, TensorShape, as_shape
from repro.errors import InvalidArgumentError

__all__ = ["FIFOQueue"]


class FIFOQueue:
    """A bounded queue of (tuples of) tensors.

    Args:
        capacity: maximum number of queued elements.
        dtypes_: one dtype per component.
        shapes: static shape per component (may be partial).
        shared_name: name under which tasks share the queue state.
    """

    def __init__(self, capacity: int, dtypes_: Sequence, shapes: Optional[Sequence] = None,
                 name: str = "fifo_queue", shared_name: Optional[str] = None,
                 graph: Optional[Graph] = None):
        if capacity < 1:
            raise InvalidArgumentError("queue capacity must be >= 1")
        g = graph or get_default_graph()
        self._dtypes = [dtypes.as_dtype(d) for d in dtypes_]
        if shapes is None:
            shapes = [None] * len(self._dtypes)
        if len(shapes) != len(self._dtypes):
            raise InvalidArgumentError("shapes/dtypes length mismatch")
        self._shapes = [as_shape(s) for s in shapes]
        self._queue_op = g.create_op(
            "FIFOQueue",
            inputs=[],
            output_specs=[],
            attrs={
                "capacity": capacity,
                "component_dtypes": [d.name for d in self._dtypes],
                "shared_name": shared_name,
            },
            name=name,
        )

    # -- introspection -------------------------------------------------------
    @property
    def op(self) -> Operation:
        return self._queue_op

    @property
    def name(self) -> str:
        return self._queue_op.name

    @property
    def device(self) -> str:
        return self._queue_op.device

    @property
    def num_components(self) -> int:
        return len(self._dtypes)

    @property
    def graph(self) -> Graph:
        return self._queue_op.graph

    def _runtime_key(self) -> str:
        return self._queue_op.get_attr("shared_name") or self._queue_op.name

    # -- graph ops ------------------------------------------------------------
    def enqueue(self, values: Union[Tensor, Sequence], name: str = "enqueue") -> Operation:
        """Op pushing one element (blocks while the queue is full)."""
        if isinstance(values, (Tensor,)) or not isinstance(values, (list, tuple)):
            values = [values]
        if len(values) != self.num_components:
            raise InvalidArgumentError(
                f"enqueue expects {self.num_components} components, got {len(values)}"
            )
        tensors = []
        for v, dt in zip(values, self._dtypes):
            t = to_tensor(v, dtype=None, graph=self.graph)
            if t.dtype != dt:
                raise InvalidArgumentError(
                    f"enqueue component dtype {t.dtype.name} != queue dtype {dt.name}"
                )
            tensors.append(t)
        op = self.graph.create_op(
            "QueueEnqueue",
            inputs=tensors,
            output_specs=[],
            attrs={"queue": self._runtime_key(),
                   "capacity": self._queue_op.get_attr("capacity"),
                   "num_components": self.num_components},
            name=f"{self.name}/{name}",
            device=self.device,
        )
        return op

    def dequeue(self, name: str = "dequeue") -> Union[Tensor, list[Tensor]]:
        """Tensor(s) for one dequeued element (blocks while empty)."""
        op = self.graph.create_op(
            "QueueDequeue",
            inputs=[],
            output_specs=[(d, s) for d, s in zip(self._dtypes, self._shapes)],
            attrs={"queue": self._runtime_key(),
                   "capacity": self._queue_op.get_attr("capacity"),
                   "num_components": self.num_components},
            name=f"{self.name}/{name}",
            device=self.device,
        )
        if self.num_components == 1:
            return op.outputs[0]
        return list(op.outputs)

    def size(self, name: str = "size") -> Tensor:
        op = self.graph.create_op(
            "QueueSize",
            inputs=[],
            output_specs=[(dtypes.int32, TensorShape([]))],
            attrs={"queue": self._runtime_key(),
                   "capacity": self._queue_op.get_attr("capacity"),
                   "num_components": self.num_components},
            name=f"{self.name}/{name}",
            device=self.device,
        )
        return op.outputs[0]

    def close(self, cancel_pending_enqueues: bool = False, name: str = "close") -> Operation:
        return self.graph.create_op(
            "QueueClose",
            inputs=[],
            output_specs=[],
            attrs={"queue": self._runtime_key(),
                   "capacity": self._queue_op.get_attr("capacity"),
                   "num_components": self.num_components,
                   "cancel_pending_enqueues": cancel_pending_enqueues},
            name=f"{self.name}/{name}",
            device=self.device,
        )


def _get_queue(op, ctx) -> SimQueue:
    key = op.get_attr("queue")
    queues = ctx.resources.queues
    if key not in queues:
        queues[key] = SimQueue(
            env=ctx.env,
            capacity=op.get_attr("capacity"),
            num_components=op.get_attr("num_components"),
            name=key,
        )
    return queues[key]


@register_kernel("FIFOQueue", devices=("cpu",), graph_only=True)
def _queue_create_kernel(op, inputs, ctx):
    # Creation is lazy in _get_queue; the handle op itself is a no-op so
    # that running it (e.g. through an init fetch) is harmless.
    return [], Cost.none()


def _queue_op_host_work(ctx):
    """Per-queue-op host overhead, serialized on the task's GIL.

    TF queue ops cost tens of microseconds of host work each; when one
    reducer task services dozens of enqueue/dequeue ops per step, this
    serial section is what limits synchronous scaling (the QueueRunner/
    GIL effect the paper discusses).
    """
    if ctx.worker is None or ctx.env is None:
        return
    overhead = 2 * ctx.worker.node.cpu.model.dispatch_overhead
    gil = ctx.worker.gil
    # Uncontended GIL: grab the slot synchronously (no calendar event).
    request = gil.try_acquire()
    if request is None:
        request = gil.request()
        yield request
    try:
        yield ctx.env.timeout(overhead)
    finally:
        gil.release(request)


@register_kernel("QueueEnqueue", devices=("cpu",), stateful=True)
def _enqueue_kernel(op, inputs, ctx):
    queue = _get_queue(op, ctx)
    yield from _queue_op_host_work(ctx)
    if not queue.try_enqueue(list(inputs)):
        yield queue.enqueue(list(inputs))
    nbytes = sum(runtime_spec(v).nbytes for v in inputs)
    return [], Cost(mem_bytes=nbytes, kind="sync")


@register_kernel("QueueDequeue", devices=("cpu",), stateful=True)
def _dequeue_kernel(op, inputs, ctx):
    queue = _get_queue(op, ctx)
    yield from _queue_op_host_work(ctx)
    ready, components = queue.try_dequeue()
    if not ready:
        components = yield queue.dequeue()
    nbytes = sum(runtime_spec(v).nbytes for v in components)
    return list(components), Cost(mem_bytes=nbytes, kind="sync")


@register_kernel("QueueSize", devices=("cpu",), graph_only=True)
def _queue_size_kernel(op, inputs, ctx):
    import numpy as np

    queue = _get_queue(op, ctx)
    return [np.asarray(queue.size(), dtype=np.int32)], Cost.none()


@register_kernel("QueueClose", devices=("cpu",), stateful=True, graph_only=True)
def _queue_close_kernel(op, inputs, ctx):
    queue = _get_queue(op, ctx)
    queue.close(cancel_pending_enqueues=op.get_attr("cancel_pending_enqueues", False))
    return [], Cost.none()
