"""A minimal Dataset input-pipeline API.

The paper feeds its workers from datasets of tile indices that are sharded
across tasks ("the list is shared by workers and they individually load
these tiles"). This module provides exactly that slice of the API:
``from_tensor_slices`` → ``shard`` → ``repeat`` → ``map`` → one-shot
iterator whose ``get_next()`` raises :class:`OutOfRangeError` when
exhausted.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence


import numpy as np

from repro import dtypes
from repro.core.graph import Graph, get_default_graph
from repro.core.kernels.registry import Cost, register_kernel
from repro.core.tensor import Tensor, TensorShape
from repro.errors import InvalidArgumentError, OutOfRangeError

__all__ = ["Dataset", "DatasetIterator"]


class Dataset:
    """An immutable, re-iterable sequence of (tuples of) small tensors."""

    def __init__(self, factory: Callable[[], Iterable], element_spec: Sequence[tuple]):
        """Internal constructor; use :meth:`from_tensor_slices`."""
        self._factory = factory
        # element_spec: list of (DType, TensorShape) per component.
        self.element_spec = [
            (dtypes.as_dtype(dt), TensorShape(shape) if not isinstance(shape, TensorShape) else shape)
            for dt, shape in element_spec
        ]

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def from_tensor_slices(data) -> "Dataset":
        """Dataset over the first dimension of ``data``.

        ``data`` may be one array/list or a tuple of equal-length arrays
        (multi-component elements).
        """
        if isinstance(data, tuple):
            arrays = [np.asarray(a) for a in data]
            lengths = {len(a) for a in arrays}
            if len(lengths) != 1:
                raise InvalidArgumentError(
                    f"from_tensor_slices components disagree in length: {lengths}"
                )
            spec = [(dtypes.as_dtype(a.dtype), TensorShape(a.shape[1:])) for a in arrays]

            def factory():
                for row in zip(*arrays):
                    yield tuple(np.asarray(x) for x in row)

            return Dataset(factory, spec)
        arr = np.asarray(data)
        if arr.ndim == 0:
            raise InvalidArgumentError("from_tensor_slices needs at least rank 1")
        spec = [(dtypes.as_dtype(arr.dtype), TensorShape(arr.shape[1:]))]

        def factory():
            for row in arr:
                yield (np.asarray(row),)

        return Dataset(factory, spec)

    @staticmethod
    def range(*args) -> "Dataset":
        values = np.arange(*args, dtype=np.int64)
        return Dataset.from_tensor_slices(values)

    # -- transformations -------------------------------------------------------
    def shard(self, num_shards: int, index: int) -> "Dataset":
        """Every ``num_shards``-th element starting at ``index`` (TF semantics);
        this is how the paper splits one tile list across workers."""
        if not 0 <= index < num_shards:
            raise InvalidArgumentError(
                f"shard index {index} outside [0, {num_shards})"
            )
        parent = self._factory

        def factory():
            for i, element in enumerate(parent()):
                if i % num_shards == index:
                    yield element

        return Dataset(factory, self.element_spec)

    def repeat(self, count: Optional[int] = None) -> "Dataset":
        parent = self._factory

        def factory():
            n = 0
            while count is None or n < count:
                yielded = False
                for element in parent():
                    yielded = True
                    yield element
                if not yielded:
                    return
                n += 1

        return Dataset(factory, self.element_spec)

    def take(self, count: int) -> "Dataset":
        parent = self._factory

        def factory():
            for i, element in enumerate(parent()):
                if i >= count:
                    return
                yield element

        return Dataset(factory, self.element_spec)

    def map(self, fn: Callable, element_spec: Sequence[tuple]) -> "Dataset":
        """Apply a python function per element.

        Unlike TF we cannot trace ``fn`` into the graph, so the caller must
        state the post-map ``element_spec``.
        """
        parent = self._factory

        def factory():
            for element in parent():
                out = fn(*element)
                if not isinstance(out, tuple):
                    out = (out,)
                yield out

        return Dataset(factory, element_spec)

    def batch(self, batch_size: int, drop_remainder: bool = False) -> "Dataset":
        parent = self._factory
        spec = [
            (dt, TensorShape([batch_size if drop_remainder else None]).concatenate(shape))
            for dt, shape in self.element_spec
        ]

        def factory():
            buffer: list = []
            for element in parent():
                buffer.append(element)
                if len(buffer) == batch_size:
                    yield tuple(np.stack(col) for col in zip(*buffer))
                    buffer = []
            if buffer and not drop_remainder:
                yield tuple(np.stack(col) for col in zip(*buffer))

        return Dataset(factory, spec)

    # -- iteration ---------------------------------------------------------------
    def make_one_shot_iterator(self, name: str = "Iterator",
                               graph: Optional[Graph] = None) -> "DatasetIterator":
        return DatasetIterator(self, name=name, graph=graph)

    def as_python_list(self) -> list:
        """Materialize all elements (testing convenience)."""
        return [e if len(e) > 1 else e[0] for e in self._factory()]


class DatasetIterator:
    """One-shot iterator over a dataset, exposed as a graph op."""

    def __init__(self, dataset: Dataset, name: str, graph: Optional[Graph]):
        g = graph or get_default_graph()
        self._dataset = dataset
        self._iter_op = g.create_op(
            "IteratorV2",
            inputs=[],
            output_specs=[],
            attrs={"dataset": dataset},
            name=name,
        )

    @property
    def op(self):
        return self._iter_op

    def get_next(self, name: str = "get_next"):
        """Tensor(s) producing the next element; raises OutOfRangeError
        (inside run) once exhausted."""
        op = self._iter_op.graph.create_op(
            "IteratorGetNext",
            inputs=[],
            output_specs=[(dt, shape) for dt, shape in self._dataset.element_spec],
            attrs={"iterator": self._iter_op.name, "dataset": self._dataset},
            name=f"{self._iter_op.name}/{name}",
            device=self._iter_op.device,
        )
        if len(op.outputs) == 1:
            return op.outputs[0]
        return list(op.outputs)


@register_kernel("IteratorV2", devices=("cpu",), graph_only=True)
def _iterator_kernel(op, inputs, ctx):
    return [], Cost.none()


@register_kernel("IteratorGetNext", devices=("cpu",), stateful=True, graph_only=True)
def _get_next_kernel(op, inputs, ctx):
    key = op.get_attr("iterator")
    iterators = ctx.resources.iterators
    if key not in iterators:
        iterators[key] = iter(op.get_attr("dataset")._factory())
    try:
        element = next(iterators[key])
    except StopIteration:
        raise OutOfRangeError("End of sequence", node_def=op.name) from None
    nbytes = sum(np.asarray(c).nbytes for c in element)
    # Input pipelines run on the host; charge a light host cost.
    return list(element), Cost(host_bytes=nbytes, kind="io")
