"""Operation builders.

Importing this package registers every kernel. The flat namespace mirrors
the small slice of the TF 1.x API the paper's applications use.
"""

# One import per module so the registration intent (and its noqa) is
# line-local for linters.
from repro.core.ops import array_ops  # noqa: F401  (kernel registration)
from repro.core.ops import collective_ops  # noqa: F401  (kernel registration)
from repro.core.ops import control_flow  # noqa: F401  (kernel registration)
from repro.core.ops import data_ops  # noqa: F401  (kernel registration)
from repro.core.ops import io_ops  # noqa: F401  (kernel registration)
from repro.core.ops import math_ops  # noqa: F401  (kernel registration)
from repro.core.ops import queue_ops  # noqa: F401  (kernel registration)
from repro.core.ops import random_ops  # noqa: F401  (kernel registration)
from repro.core.ops import signal_ops  # noqa: F401  (kernel registration)
from repro.core.ops import state_ops  # noqa: F401  (kernel registration)
from repro.core.ops.array_ops import (
    cast,
    concat,
    constant,
    expand_dims,
    fill,
    identity,
    ones,
    placeholder,
    reshape,
    slice_,
    split,
    squeeze,
    stack,
    transpose,
    zeros,
    zeros_like,
)
from repro.core.ops.collective_ops import (
    all_gather,
    all_reduce,
    broadcast,
    reduce_scatter,
)
from repro.core.ops.control_flow import group, no_op
from repro.core.ops.data_ops import Dataset
from repro.core.ops.io_ops import read_tile, write_tile
from repro.core.ops.math_ops import (
    add,
    add_n,
    divide,
    dot,
    exp,
    greater_equal,
    matmul,
    maximum,
    minimum,
    multiply,
    negative,
    reduce_max,
    reduce_mean,
    reduce_sum,
    sigmoid,
    sqrt,
    square,
    subtract,
)
from repro.core.ops.queue_ops import FIFOQueue
from repro.core.ops.random_ops import random_normal, random_uniform
from repro.core.ops.signal_ops import fft, ifft
from repro.core.ops.state_ops import (
    Variable,
    assign,
    assign_add,
    assign_sub,
    global_variables_initializer,
)

__all__ = [
    "constant", "placeholder", "identity", "cast", "reshape", "transpose",
    "concat", "split", "stack", "squeeze", "expand_dims", "fill", "zeros",
    "ones", "zeros_like", "slice_",
    "add", "subtract", "multiply", "divide", "negative", "square", "sqrt",
    "exp", "sigmoid", "maximum", "minimum", "greater_equal", "matmul",
    "dot", "add_n", "reduce_sum", "reduce_mean", "reduce_max",
    "random_uniform", "random_normal",
    "Variable", "assign", "assign_add", "assign_sub",
    "global_variables_initializer",
    "FIFOQueue", "Dataset", "read_tile", "write_tile",
    "fft", "ifft", "group", "no_op",
    "all_reduce", "reduce_scatter", "all_gather", "broadcast",
]
