"""Spectral ops: 1-D FFT / inverse FFT.

The flop convention follows the paper: ``5 N log2 N`` for a length-``N``
complex transform (the standard Cooley–Tukey operation count).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.kernels.registry import Cost, register_kernel
from repro.core.ops.common import runtime_spec, to_tensor

from repro.core.tensor import SymbolicValue, Tensor
from repro.errors import InvalidArgumentError

__all__ = ["fft", "ifft"]


def _fft_like(op_type: str, x, name: str) -> Tensor:
    xt = to_tensor(x)
    if not xt.dtype.is_complex:
        raise InvalidArgumentError(
            f"{op_type} requires a complex input, got {xt.dtype.name}; cast first"
        )
    if xt.shape.rank not in (None, 1):
        raise InvalidArgumentError(f"{op_type} implements 1-D transforms, got {xt.shape}")
    op = xt.graph.create_op(
        op_type,
        inputs=[xt],
        output_specs=[(xt.dtype, xt.shape)],
        name=name,
    )
    return op.outputs[0]


def fft(x, name: str = "FFT") -> Tensor:
    """1-D discrete Fourier transform of a complex vector."""
    return _fft_like("FFT", x, name)


def ifft(x, name: str = "IFFT") -> Tensor:
    """1-D inverse discrete Fourier transform."""
    return _fft_like("IFFT", x, name)


def _fft_cost(spec: SymbolicValue) -> Cost:
    n = max(spec.size, 1)
    flops = 5.0 * n * max(math.log2(n), 1.0)
    return Cost(flops=flops, mem_bytes=2 * spec.nbytes, kind="compute")


@register_kernel("FFT", pure=True)
def _fft_kernel(op, inputs, ctx):
    (x,) = inputs
    spec = runtime_spec(x)
    cost = _fft_cost(spec)
    if isinstance(x, SymbolicValue):
        return [spec], cost
    out = np.fft.fft(np.asarray(x)).astype(op.outputs[0].dtype.np_dtype, copy=False)
    return [out], cost


@register_kernel("IFFT", pure=True)
def _ifft_kernel(op, inputs, ctx):
    (x,) = inputs
    spec = runtime_spec(x)
    cost = _fft_cost(spec)
    if isinstance(x, SymbolicValue):
        return [spec], cost
    out = np.fft.ifft(np.asarray(x)).astype(op.outputs[0].dtype.np_dtype, copy=False)
    return [out], cost
