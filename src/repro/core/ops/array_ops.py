"""Array manipulation ops: constants, placeholders, reshaping, layout."""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

import numpy as np

from repro import dtypes
from repro.core.graph import Graph
from repro.core.kernels.registry import Cost, declare_op_constraint, register_kernel
from repro.core.ops.common import (
    any_symbolic,
    graph_of,
    make_symbolic,
    runtime_spec,
    to_tensor,
)
from repro.core.tensor import SymbolicValue, Tensor, TensorShape, as_shape
from repro.errors import InvalidArgumentError

__all__ = [
    "constant",
    "placeholder",
    "identity",
    "cast",
    "reshape",
    "transpose",
    "concat",
    "split",
    "stack",
    "squeeze",
    "expand_dims",
    "fill",
    "zeros",
    "ones",
    "zeros_like",
    "slice_",
]


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------

def constant(value: Any, dtype=None, shape=None, name: str = "Const",
             graph: Optional[Graph] = None) -> Tensor:
    """An immutable tensor holding ``value``."""
    g = graph_of(graph=graph)
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtypes.as_dtype(dtype).np_dtype)
    elif not isinstance(value, (np.ndarray, np.generic)):
        # Python literals default to float32/int32, as in TF. NumPy arrays
        # and scalars keep their explicit dtype.
        if arr.dtype == np.float64:
            arr = arr.astype(np.float32)
        elif arr.dtype == np.int64:
            arr = arr.astype(np.int32)
    if shape is not None:
        arr = np.broadcast_to(arr, as_shape(shape).as_tuple()).copy()
    arr.setflags(write=False)
    op = g.create_op(
        "Const",
        inputs=[],
        output_specs=[(dtypes.as_dtype(arr.dtype), TensorShape(arr.shape))],
        attrs={"value": arr},
        name=name,
    )
    return op.outputs[0]


def placeholder(dtype, shape=None, name: str = "Placeholder",
                graph: Optional[Graph] = None) -> Tensor:
    """A tensor whose value is supplied per run through ``feed_dict``."""
    g = graph_of(graph=graph)
    op = g.create_op(
        "Placeholder",
        inputs=[],
        output_specs=[(dtypes.as_dtype(dtype), as_shape(shape))],
        name=name,
    )
    return op.outputs[0]


def identity(value, name: str = "Identity") -> Tensor:
    """Pass-through; useful to pin a copy of a tensor onto a device."""
    x = to_tensor(value)
    op = x.graph.create_op(
        "Identity",
        inputs=[x],
        output_specs=[(x.dtype, x.shape)],
        name=name,
    )
    return op.outputs[0]


def cast(value, dtype, name: str = "Cast") -> Tensor:
    x = to_tensor(value)
    target = dtypes.as_dtype(dtype)
    op = x.graph.create_op(
        "Cast",
        inputs=[x],
        output_specs=[(target, x.shape)],
        attrs={"dst_dtype": target.name},
        name=name,
    )
    return op.outputs[0]


def reshape(value, shape: Sequence[int], name: str = "Reshape") -> Tensor:
    x = to_tensor(value)
    new_shape = [int(d) for d in shape]
    if new_shape.count(-1) > 1:
        raise InvalidArgumentError("reshape allows at most one -1 dimension")
    static: list[Optional[int]] = []
    known = 1
    for d in new_shape:
        if d == -1:
            static.append(None)
        else:
            static.append(d)
            known *= d
    if -1 in new_shape and x.shape.is_fully_defined:
        total = x.shape.num_elements()
        if total % known != 0:
            raise InvalidArgumentError(
                f"Cannot reshape {x.shape} ({total} elements) into {new_shape}"
            )
        static[new_shape.index(-1)] = total // known
    elif x.shape.is_fully_defined and x.shape.num_elements() != known:
        raise InvalidArgumentError(
            f"Cannot reshape {x.shape} into {new_shape}: element count differs"
        )
    op = x.graph.create_op(
        "Reshape",
        inputs=[x],
        output_specs=[(x.dtype, TensorShape(static))],
        attrs={"shape": tuple(new_shape)},
        name=name,
    )
    return op.outputs[0]


def transpose(value, perm: Optional[Sequence[int]] = None, name: str = "Transpose") -> Tensor:
    x = to_tensor(value)
    rank = x.shape.rank
    if perm is None:
        if rank is None:
            raise InvalidArgumentError("transpose of unknown-rank tensor needs perm")
        perm = tuple(reversed(range(rank)))
    perm = tuple(int(p) for p in perm)
    if rank is not None:
        if sorted(perm) != list(range(rank)):
            raise InvalidArgumentError(f"Bad permutation {perm} for rank {rank}")
        out_shape = TensorShape([x.shape[p] for p in perm])
    else:
        out_shape = TensorShape(None)
    op = x.graph.create_op(
        "Transpose",
        inputs=[x],
        output_specs=[(x.dtype, out_shape)],
        attrs={"perm": perm},
        name=name,
    )
    return op.outputs[0]


def concat(values: Sequence[Any], axis: int, name: str = "Concat") -> Tensor:
    tensors = [to_tensor(v) for v in values]
    if not tensors:
        raise InvalidArgumentError("concat of an empty list")
    g = tensors[0].graph
    dtype = tensors[0].dtype
    for t in tensors[1:]:
        if t.dtype != dtype:
            raise InvalidArgumentError(
                f"concat dtype mismatch: {dtype.name} vs {t.dtype.name}"
            )
    rank = next((t.shape.rank for t in tensors if t.shape.rank is not None), None)
    if rank is None:
        out_shape = TensorShape(None)
    else:
        ax = axis % rank
        dims: list[Optional[int]] = list(tensors[0].shape.with_rank(rank).dims)
        total: Optional[int] = 0
        for t in tensors:
            s = t.shape.with_rank(rank)
            for i in range(rank):
                if i == ax:
                    continue
                if dims[i] is None:
                    dims[i] = s[i]
                elif s[i] is not None and s[i] != dims[i]:
                    raise InvalidArgumentError(
                        f"concat shapes disagree on dim {i}: {dims[i]} vs {s[i]}"
                    )
            if total is not None:
                total = None if s[ax] is None else total + s[ax]
        dims[ax] = total
        out_shape = TensorShape(dims)
    op = g.create_op(
        "Concat",
        inputs=tensors,
        output_specs=[(dtype, out_shape)],
        attrs={"axis": axis},
        name=name,
    )
    return op.outputs[0]


def split(value, num_splits: int, axis: int = 0, name: str = "Split") -> list[Tensor]:
    x = to_tensor(value)
    rank = x.shape.rank
    if rank is None:
        out_shape = TensorShape(None)
        out_shapes = [out_shape] * num_splits
    else:
        ax = axis % rank
        dims = list(x.shape.dims)
        if dims[ax] is not None:
            if dims[ax] % num_splits != 0:
                raise InvalidArgumentError(
                    f"Dimension {dims[ax]} not divisible into {num_splits} splits"
                )
            dims[ax] = dims[ax] // num_splits
        out_shapes = [TensorShape(dims)] * num_splits
    op = x.graph.create_op(
        "Split",
        inputs=[x],
        output_specs=[(x.dtype, s) for s in out_shapes],
        attrs={"axis": axis, "num_splits": num_splits},
        name=name,
    )
    return list(op.outputs)


def stack(values: Sequence[Any], axis: int = 0, name: str = "Stack") -> Tensor:
    tensors = [to_tensor(v) for v in values]
    if not tensors:
        raise InvalidArgumentError("stack of an empty list")
    base = tensors[0].shape
    for t in tensors[1:]:
        base = base.merge_with(t.shape)
    if base.dims is None:
        out_shape = TensorShape(None)
    else:
        dims = list(base.dims)
        ax = axis % (len(dims) + 1)
        dims.insert(ax, len(tensors))
        out_shape = TensorShape(dims)
    op = tensors[0].graph.create_op(
        "Stack",
        inputs=tensors,
        output_specs=[(tensors[0].dtype, out_shape)],
        attrs={"axis": axis},
        name=name,
    )
    return op.outputs[0]


def squeeze(value, axis: Optional[int] = None, name: str = "Squeeze") -> Tensor:
    x = to_tensor(value)
    if x.shape.dims is None:
        out_shape = TensorShape(None)
    else:
        dims = list(x.shape.dims)
        if axis is None:
            dims = [d for d in dims if d != 1]
        else:
            ax = axis % len(dims)
            if dims[ax] not in (1, None):
                raise InvalidArgumentError(
                    f"Cannot squeeze dim {ax} of size {dims[ax]}"
                )
            dims.pop(ax)
        out_shape = TensorShape(dims)
    op = x.graph.create_op(
        "Squeeze",
        inputs=[x],
        output_specs=[(x.dtype, out_shape)],
        attrs={"axis": axis},
        name=name,
    )
    return op.outputs[0]


def expand_dims(value, axis: int, name: str = "ExpandDims") -> Tensor:
    x = to_tensor(value)
    if x.shape.dims is None:
        out_shape = TensorShape(None)
    else:
        dims = list(x.shape.dims)
        ax = axis % (len(dims) + 1)
        dims.insert(ax, 1)
        out_shape = TensorShape(dims)
    op = x.graph.create_op(
        "ExpandDims",
        inputs=[x],
        output_specs=[(x.dtype, out_shape)],
        attrs={"axis": axis},
        name=name,
    )
    return op.outputs[0]


def fill(shape: Sequence[int], value: Union[int, float], dtype=dtypes.float32,
         name: str = "Fill", graph: Optional[Graph] = None) -> Tensor:
    g = graph_of(graph=graph)
    target = dtypes.as_dtype(dtype)
    static = as_shape(list(shape))
    op = g.create_op(
        "Fill",
        inputs=[],
        output_specs=[(target, static)],
        attrs={"shape": static.as_tuple(), "fill_value": value},
        name=name,
    )
    return op.outputs[0]


def zeros(shape, dtype=dtypes.float32, name: str = "zeros",
          graph: Optional[Graph] = None) -> Tensor:
    return fill(shape, 0, dtype=dtype, name=name, graph=graph)


def ones(shape, dtype=dtypes.float32, name: str = "ones",
         graph: Optional[Graph] = None) -> Tensor:
    return fill(shape, 1, dtype=dtype, name=name, graph=graph)


def zeros_like(value, name: str = "zeros_like") -> Tensor:
    x = to_tensor(value)
    op = x.graph.create_op(
        "ZerosLike",
        inputs=[x],
        output_specs=[(x.dtype, x.shape)],
        name=name,
    )
    return op.outputs[0]


def slice_(value, begin: Sequence[int], size: Sequence[int], name: str = "Slice") -> Tensor:
    """Extract ``value[begin : begin + size]`` along each dimension."""
    x = to_tensor(value)
    begin = tuple(int(b) for b in begin)
    size = tuple(int(s) for s in size)
    if len(begin) != len(size):
        raise InvalidArgumentError("slice begin/size rank mismatch")
    if x.shape.rank is not None and x.shape.rank != len(begin):
        raise InvalidArgumentError(
            f"slice begin/size rank {len(begin)} != tensor rank {x.shape.rank}"
        )
    out_shape = TensorShape(size)
    op = x.graph.create_op(
        "Slice",
        inputs=[x],
        output_specs=[(x.dtype, out_shape)],
        attrs={"begin": begin, "size": size},
        name=name,
    )
    return op.outputs[0]


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def _memcpy_cost(*values) -> Cost:
    nbytes = sum(runtime_spec(v).nbytes for v in values)
    return Cost(mem_bytes=nbytes, kind="memcpy")


@register_kernel("Const", pure=True, inline=True)
def _const_kernel(op, inputs, ctx):
    value = op.get_attr("value")
    return [value], Cost.none()


@register_kernel("Placeholder", inline=True)
def _placeholder_kernel(op, inputs, ctx):
    name = op.outputs[0].name
    if name not in ctx.feeds:
        raise InvalidArgumentError(
            f"Placeholder {op.name!r} requires a feed value", node_def=op.name
        )
    value = ctx.feeds[name]
    if not isinstance(value, SymbolicValue):
        value = np.asarray(value, dtype=op.outputs[0].dtype.np_dtype)
        if not op.outputs[0].shape.is_compatible_with(TensorShape(value.shape)):
            raise InvalidArgumentError(
                f"Feed shape {value.shape} incompatible with placeholder "
                f"shape {op.outputs[0].shape}",
                node_def=op.name,
            )
    return [value], Cost.none()


@register_kernel("Identity", pure=True, inline=True)
def _identity_kernel(op, inputs, ctx):
    return [inputs[0]], Cost.none()


@register_kernel("Cast", pure=True)
def _cast_kernel(op, inputs, ctx):
    target = dtypes.as_dtype(op.get_attr("dst_dtype"))
    (x,) = inputs
    if isinstance(x, SymbolicValue):
        out = make_symbolic(x.shape, target)
    else:
        out = np.asarray(x).astype(target.np_dtype)
    return [out], _memcpy_cost(x, out)


@register_kernel("Reshape", pure=True, inline=True)
def _reshape_kernel(op, inputs, ctx):
    (x,) = inputs
    new_shape = op.get_attr("shape")
    if isinstance(x, SymbolicValue):
        total = x.size
        known = 1
        for d in new_shape:
            if d != -1:
                known *= d
        resolved = tuple(total // known if d == -1 else d for d in new_shape)
        return [make_symbolic(resolved, x.dtype)], Cost.none()
    return [np.reshape(x, new_shape)], Cost.none()


@register_kernel("Transpose", pure=True)
def _transpose_kernel(op, inputs, ctx):
    (x,) = inputs
    perm = op.get_attr("perm")
    if isinstance(x, SymbolicValue):
        out = make_symbolic(tuple(x.shape[p] for p in perm), x.dtype)
    else:
        out = np.transpose(x, perm)
    return [out], _memcpy_cost(x, out)


@register_kernel("Concat", pure=True)
def _concat_kernel(op, inputs, ctx):
    axis = op.get_attr("axis")
    if any_symbolic(inputs):
        specs = [runtime_spec(v) for v in inputs]
        rank = len(specs[0].shape)
        ax = axis % rank
        dims = list(specs[0].shape)
        dims[ax] = sum(s.shape[ax] for s in specs)
        out = make_symbolic(dims, specs[0].dtype)
    else:
        out = np.concatenate([np.asarray(v) for v in inputs], axis=axis)
    return [out], _memcpy_cost(*inputs)


@register_kernel("Split", pure=True)
def _split_kernel(op, inputs, ctx):
    (x,) = inputs
    axis = op.get_attr("axis")
    n = op.get_attr("num_splits")
    if isinstance(x, SymbolicValue):
        ax = axis % len(x.shape)
        dims = list(x.shape)
        dims[ax] //= n
        outs = [make_symbolic(dims, x.dtype) for _ in range(n)]
    else:
        outs = [np.ascontiguousarray(part) for part in np.split(np.asarray(x), n, axis=axis)]
    return outs, _memcpy_cost(x)


@register_kernel("Stack", pure=True)
def _stack_kernel(op, inputs, ctx):
    axis = op.get_attr("axis")
    if any_symbolic(inputs):
        spec = runtime_spec(inputs[0])
        dims = list(spec.shape)
        ax = axis % (len(dims) + 1)
        dims.insert(ax, len(inputs))
        out = make_symbolic(dims, spec.dtype)
    else:
        out = np.stack([np.asarray(v) for v in inputs], axis=axis)
    return [out], _memcpy_cost(*inputs)


@register_kernel("Squeeze", pure=True, inline=True)
def _squeeze_kernel(op, inputs, ctx):
    (x,) = inputs
    axis = op.get_attr("axis")
    if isinstance(x, SymbolicValue):
        dims = list(x.shape)
        if axis is None:
            dims = [d for d in dims if d != 1]
        else:
            dims.pop(axis % len(dims))
        out = make_symbolic(dims, x.dtype)
    else:
        out = np.squeeze(x, axis=axis) if axis is not None else np.squeeze(x)
    return [out], Cost.none()


@register_kernel("ExpandDims", pure=True, inline=True)
def _expand_dims_kernel(op, inputs, ctx):
    (x,) = inputs
    axis = op.get_attr("axis")
    if isinstance(x, SymbolicValue):
        dims = list(x.shape)
        ax = axis % (len(dims) + 1)
        dims.insert(ax, 1)
        out = make_symbolic(dims, x.dtype)
    else:
        out = np.expand_dims(x, axis=axis)
    return [out], Cost.none()


@register_kernel("Fill", pure=True)
def _fill_kernel(op, inputs, ctx):
    shape = op.get_attr("shape")
    value = op.get_attr("fill_value")
    dtype = op.outputs[0].dtype
    if ctx.symbolic:
        out = make_symbolic(shape, dtype)
    else:
        out = np.full(shape, value, dtype=dtype.np_dtype)
    return [out], Cost(mem_bytes=runtime_spec(out).nbytes, kind="memcpy")


@register_kernel("ZerosLike", pure=True)
def _zeros_like_kernel(op, inputs, ctx):
    (x,) = inputs
    if isinstance(x, SymbolicValue):
        out = make_symbolic(x.shape, x.dtype)
    else:
        out = np.zeros_like(x)
    return [out], Cost(mem_bytes=runtime_spec(out).nbytes, kind="memcpy")


@register_kernel("Slice", pure=True)
def _slice_kernel(op, inputs, ctx):
    (x,) = inputs
    begin = op.get_attr("begin")
    size = op.get_attr("size")
    if isinstance(x, SymbolicValue):
        out = make_symbolic(size, x.dtype)
    else:
        index = tuple(slice(b, b + s) for b, s in zip(begin, size))
        out = np.ascontiguousarray(np.asarray(x)[index])
    return [out], Cost(mem_bytes=2 * runtime_spec(out).nbytes, kind="memcpy")


# ---------------------------------------------------------------------------
# generation contracts (consumed by the repro.fuzz operator catalog)
# ---------------------------------------------------------------------------

_NUMERIC = ("float32", "float64", "int32")
_FLOATS = ("float32", "float64")

declare_op_constraint("Const", builder="constant", arity=(0, 0),
                      dtypes=_NUMERIC, shape_rule="source")
declare_op_constraint("Placeholder", builder="placeholder", arity=(0, 0),
                      dtypes=_NUMERIC, shape_rule="source")
declare_op_constraint("Identity", builder="identity", arity=(1, 1),
                      dtypes=_NUMERIC + ("bool",), shape_rule="unary_same")
declare_op_constraint("Cast", builder="cast", arity=(1, 1),
                      dtypes=_NUMERIC + ("bool",), shape_rule="cast")
declare_op_constraint("Reshape", builder="reshape", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="reshape")
declare_op_constraint("Transpose", builder="transpose", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="transpose")
declare_op_constraint("Concat", builder="concat", arity=(2, 4),
                      dtypes=_NUMERIC, shape_rule="concat")
declare_op_constraint("Split", builder="split", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="split")
declare_op_constraint("Stack", builder="stack", arity=(2, 4),
                      dtypes=_NUMERIC, shape_rule="stack")
declare_op_constraint("Squeeze", builder="squeeze", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="squeeze")
declare_op_constraint("ExpandDims", builder="expand_dims", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="expand_dims")
declare_op_constraint("Fill", builder="fill", arity=(0, 0),
                      dtypes=_NUMERIC, shape_rule="source")
declare_op_constraint("ZerosLike", builder="zeros_like", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="unary_same")
declare_op_constraint("Slice", builder="slice_", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="slice")
