"""Tile I/O against the simulated parallel filesystem (Lustre).

The paper's matmul and FFT apps pre-process their inputs into ``.npy``
tiles on Lustre; workers then load tiles by index. ``read_tile`` formats a
path pattern with scalar-int tensor inputs (e.g. ``A_{0}_{1}.npy``) so
tile selection can come straight from a Dataset of indices.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import dtypes
from repro.core.graph import Graph, Operation, get_default_graph
from repro.core.kernels.registry import Cost, register_kernel
from repro.core.ops.common import runtime_spec, to_tensor
from repro.core.tensor import Tensor, as_shape


from repro.errors import InvalidArgumentError, UnavailableError

__all__ = ["read_tile", "write_tile"]


def read_tile(pattern: str, indices: Sequence = (), dtype=dtypes.float32,
              shape=None, name: str = "ReadTile",
              graph: Optional[Graph] = None) -> Tensor:
    """Load one tile from the parallel filesystem.

    Args:
        pattern: path pattern with ``{i}`` fields, e.g. ``"A_{0}_{1}.npy"``.
        indices: scalar int tensors (or python ints) substituted into the
            pattern, typically produced by a Dataset of tile indices.
        dtype/shape: static type information for the loaded tile.
    """
    g = graph or get_default_graph()
    index_tensors = [to_tensor(i, dtype=dtypes.int64, graph=g) for i in indices]
    op = g.create_op(
        "ReadTile",
        inputs=index_tensors,
        output_specs=[(dtypes.as_dtype(dtype), as_shape(shape))],
        attrs={"pattern": pattern},
        name=name,
    )
    return op.outputs[0]


def write_tile(value, pattern: str, indices: Sequence = (),
               name: str = "WriteTile") -> Operation:
    """Store a tile to the parallel filesystem."""
    vt = to_tensor(value)
    index_tensors = [to_tensor(i, dtype=dtypes.int64, graph=vt.graph) for i in indices]
    return vt.graph.create_op(
        "WriteTile",
        inputs=[vt, *index_tensors],
        output_specs=[],
        attrs={"pattern": pattern},
        name=name,
    )


def _format_path(pattern: str, index_values) -> str:
    ints = [int(np.asarray(v)) for v in index_values]
    try:
        return pattern.format(*ints)
    except (IndexError, KeyError) as exc:
        raise InvalidArgumentError(
            f"Path pattern {pattern!r} incompatible with indices {ints}"
        ) from exc


@register_kernel("ReadTile", devices=("cpu",))
def _read_tile_kernel(op, inputs, ctx):
    fs = ctx.filesystem()
    if fs is None:
        raise UnavailableError(
            "ReadTile requires a machine with a filesystem", node_def=op.name
        )
    path = _format_path(op.get_attr("pattern"), inputs)
    node = ctx.worker.node
    value = yield from fs.read(path, node, symbolic=ctx.symbolic)
    nbytes = runtime_spec(value).nbytes
    return [value], Cost(io_bytes=nbytes, kind="io")


@register_kernel("WriteTile", devices=("cpu",), stateful=True)
def _write_tile_kernel(op, inputs, ctx):
    fs = ctx.filesystem()
    if fs is None:
        raise UnavailableError(
            "WriteTile requires a machine with a filesystem", node_def=op.name
        )
    value, *index_values = inputs
    path = _format_path(op.get_attr("pattern"), index_values)
    node = ctx.worker.node
    yield from fs.write(path, value, node)
    nbytes = runtime_spec(value).nbytes
    return [], Cost(io_bytes=nbytes, kind="io")
