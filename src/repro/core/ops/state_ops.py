"""Stateful variables and assignment ops.

Variables are the only mutable tensors. Their storage lives in the
:class:`~repro.core.kernels.registry.ResourceManager` of the task owning
the variable's device — which is exactly why a variable placed on a
parameter-server task persists across sessions and is shared by all
workers, the mechanism both the paper's STREAM benchmark (remote
``assign_add``) and its CG solver (persistent tiles between iterations,
the 2 GB GraphDef workaround) are built on.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro import dtypes
from repro.core.graph import Graph, GraphKeys, get_default_graph
from repro.core.kernels.registry import Cost, declare_op_constraint, register_kernel
from repro.core.ops.common import graph_of, runtime_spec, to_tensor

from repro.core.tensor import SymbolicValue, Tensor, TensorShape, as_shape
from repro.errors import FailedPreconditionError, InvalidArgumentError

__all__ = [
    "Variable",
    "assign",
    "assign_add",
    "assign_sub",
    "global_variables_initializer",
]


class Variable:
    """A mutable tensor with an explicit initializer op.

    Usage mirrors TF 1.x::

        v = Variable(np.zeros(10), name="state")
        sess.run(v.initializer)
        sess.run(assign_add(v, update))
        value = sess.run(v.value())
    """

    def __init__(self, initial_value: Any, dtype=None, name: str = "Variable",
                 graph: Optional[Graph] = None, shape=None):
        g = graph_of(graph=graph)
        if isinstance(initial_value, Tensor):
            init = initial_value
            if dtype is not None and init.dtype != dtypes.as_dtype(dtype):
                raise InvalidArgumentError(
                    "initial_value dtype disagrees with requested dtype"
                )
        else:
            arr = np.asarray(initial_value)
            if dtype is not None:
                arr = arr.astype(dtypes.as_dtype(dtype).np_dtype)
            from repro.core.ops.array_ops import constant

            init = constant(arr, name=f"{name}/initial_value", graph=g)
        static_shape = init.shape if shape is None else as_shape(shape)
        self._var_op = g.create_op(
            "VariableV2",
            inputs=[],
            output_specs=[(init.dtype, static_shape)],
            attrs={},
            name=name,
        )
        # The initializer is an Operation (as in TF): running it must not
        # fetch the assigned value back to the client.
        self._initializer = _make_assign(
            self._var_op, init, name=f"{name}/Assign"
        ).op
        g.add_to_collection(GraphKeys.GLOBAL_VARIABLES, self)

    # -- graph handles -------------------------------------------------------
    @property
    def op(self):
        return self._var_op

    @property
    def name(self) -> str:
        return self._var_op.name

    @property
    def dtype(self) -> dtypes.DType:
        return self._var_op.outputs[0].dtype

    @property
    def shape(self) -> TensorShape:
        return self._var_op.outputs[0].shape

    @property
    def graph(self) -> Graph:
        return self._var_op.graph

    @property
    def device(self) -> str:
        return self._var_op.device

    @property
    def initializer(self):
        """The Operation that assigns the initial value."""
        return self._initializer

    def value(self) -> Tensor:
        """The tensor reading this variable's current value."""
        return self._var_op.outputs[0]

    # Arithmetic sugar so variables can appear directly in expressions.
    def __add__(self, other):
        return self.value() + other

    def __sub__(self, other):
        return self.value() - other

    def __mul__(self, other):
        return self.value() * other

    def __matmul__(self, other):
        return self.value() @ other

    def __repr__(self) -> str:
        return f"<Variable {self.name!r} shape={self.shape} dtype={self.dtype.name}>"


def _var_op_of(ref) -> "Operation":
    from repro.core.graph import Operation

    if isinstance(ref, Variable):
        return ref.op
    if isinstance(ref, Tensor) and ref.op.type == "VariableV2":
        return ref.op
    if isinstance(ref, Operation) and ref.type == "VariableV2":
        return ref
    raise InvalidArgumentError(f"Expected a Variable, got {ref!r}")


def _make_assign(var_op, value: Tensor, name: str, op_type: str = "Assign") -> Tensor:
    shape = var_op.outputs[0].shape.merge_with(value.shape)
    op = var_op.graph.create_op(
        op_type,
        inputs=[value],
        output_specs=[(var_op.outputs[0].dtype, shape)],
        attrs={"var_name": var_op.name},
        name=name,
        # Assign ops are colocated with the variable, as in TF.
        device=var_op.device,
    )
    return op.outputs[0]


def assign(ref, value, name: str = "Assign") -> Tensor:
    """``ref = value``; output is the freshly assigned value."""
    var_op = _var_op_of(ref)
    return _make_assign(var_op, to_tensor(value, graph=var_op.graph), name)


def assign_add(ref, value, name: str = "AssignAdd") -> Tensor:
    """``ref += value``; the paper's STREAM benchmark op."""
    var_op = _var_op_of(ref)
    return _make_assign(var_op, to_tensor(value, graph=var_op.graph), name,
                        op_type="AssignAdd")


def assign_sub(ref, value, name: str = "AssignSub") -> Tensor:
    var_op = _var_op_of(ref)
    return _make_assign(var_op, to_tensor(value, graph=var_op.graph), name,
                        op_type="AssignSub")


def global_variables_initializer(graph: Optional[Graph] = None, name: str = "init"):
    """Group op running every variable initializer in the graph."""
    from repro.core.ops.control_flow import group

    g = graph or get_default_graph()
    variables = g.get_collection(GraphKeys.GLOBAL_VARIABLES)
    return group(*[v.initializer for v in variables], name=name, graph=g)


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

@register_kernel("VariableV2", inline=True)
def _variable_kernel(op, inputs, ctx):
    store = ctx.resources.variables
    if op.name not in store:
        raise FailedPreconditionError(
            f"Attempting to use uninitialized variable {op.name!r}",
            node_def=op.name,
        )
    value = store[op.name]
    # Reading a variable hands out a reference, not a copy (TF semantics);
    # the read itself is free, consumers pay for the bytes they touch.
    return [value], Cost.none()


@register_kernel("Assign", stateful=True)
def _assign_kernel(op, inputs, ctx):
    (value,) = inputs
    var_name = op.get_attr("var_name")
    if isinstance(value, np.ndarray):
        value = value.copy()
    ctx.resources.variables[var_name] = value
    nbytes = runtime_spec(value).nbytes
    return [value], Cost(mem_bytes=2 * nbytes, kind="memcpy")


def _accumulate_kernel(np_op):
    def kernel(op, inputs, ctx):
        (delta,) = inputs
        var_name = op.get_attr("var_name")
        store = ctx.resources.variables
        if var_name not in store:
            raise FailedPreconditionError(
                f"Attempting to update uninitialized variable {var_name!r}",
                node_def=op.name,
            )
        current = store[var_name]
        spec = runtime_spec(current)
        cost = Cost(flops=spec.size, mem_bytes=3 * spec.nbytes, kind="compute")
        if isinstance(current, SymbolicValue) or isinstance(delta, SymbolicValue):
            store[var_name] = spec
            return [spec], cost
        updated = np_op(np.asarray(current), np.asarray(delta)).astype(
            op.outputs[0].dtype.np_dtype, copy=False
        )
        store[var_name] = updated
        return [updated], cost

    return kernel


register_kernel("AssignAdd", stateful=True)(_accumulate_kernel(np.add))
register_kernel("AssignSub", stateful=True)(_accumulate_kernel(np.subtract))


# ---------------------------------------------------------------------------
# generation contracts (consumed by the repro.fuzz operator catalog)
# ---------------------------------------------------------------------------

_NUMERIC = ("float32", "float64", "int32")

declare_op_constraint("VariableV2", builder="Variable", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="variable_update")
declare_op_constraint("Assign", builder="assign", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="variable_update")
declare_op_constraint("AssignAdd", builder="assign_add", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="variable_update")
declare_op_constraint("AssignSub", builder="assign_sub", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="variable_update")
