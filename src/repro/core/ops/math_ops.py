"""Mathematical ops: elementwise arithmetic, reductions, matrix products."""

from __future__ import annotations

from typing import Any, Optional, Sequence


import numpy as np

from repro import dtypes
from repro.core.kernels.registry import Cost, declare_op_constraint, register_kernel
from repro.core.ops.common import (
    any_symbolic,
    broadcast_static_shapes,
    elementwise_spec,
    make_symbolic,
    runtime_shape,
    runtime_spec,
    to_tensor,
)
from repro.core.tensor import SymbolicValue, Tensor, TensorShape
from repro.errors import InvalidArgumentError

__all__ = [
    "add",
    "subtract",
    "multiply",
    "divide",
    "negative",
    "square",
    "sqrt",
    "exp",
    "sigmoid",
    "maximum",
    "minimum",
    "greater_equal",
    "matmul",
    "dot",
    "add_n",
    "reduce_sum",
    "reduce_mean",
    "reduce_max",
    "cast",
]

# Re-export cast so ``math_ops.cast`` works like in TF.
from repro.core.ops.array_ops import cast  # noqa: E402


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------

def _binary(op_type: str, x, y, name: str) -> Tensor:
    xt = to_tensor(x)
    yt = to_tensor(y, graph=xt.graph)
    if xt.dtype != yt.dtype:
        # Promote literals/other dtypes NumPy-style; TF is stricter, but the
        # looser rule keeps the HPC apps readable.
        target = dtypes.result_dtype(xt.dtype, yt.dtype)
        if xt.dtype != target:
            xt = cast(xt, target)
        if yt.dtype != target:
            yt = cast(yt, target)
    shape = broadcast_static_shapes(xt.shape, yt.shape)
    op = xt.graph.create_op(
        op_type,
        inputs=[xt, yt],
        output_specs=[(xt.dtype, shape)],
        name=name,
    )
    return op.outputs[0]


def add(x, y, name: str = "Add") -> Tensor:
    return _binary("Add", x, y, name)


def subtract(x, y, name: str = "Sub") -> Tensor:
    return _binary("Sub", x, y, name)


def multiply(x, y, name: str = "Mul") -> Tensor:
    return _binary("Mul", x, y, name)


def divide(x, y, name: str = "Div") -> Tensor:
    return _binary("Div", x, y, name)


def maximum(x, y, name: str = "Maximum") -> Tensor:
    return _binary("Maximum", x, y, name)


def minimum(x, y, name: str = "Minimum") -> Tensor:
    return _binary("Minimum", x, y, name)


def greater_equal(x, y, name: str = "GreaterEqual") -> Tensor:
    """Elementwise ``x >= y`` as a bool tensor (NumPy broadcasting)."""
    xt = to_tensor(x)
    yt = to_tensor(y, graph=xt.graph)
    if xt.dtype != yt.dtype:
        target = dtypes.result_dtype(xt.dtype, yt.dtype)
        if xt.dtype != target:
            xt = cast(xt, target)
        if yt.dtype != target:
            yt = cast(yt, target)
    shape = broadcast_static_shapes(xt.shape, yt.shape)
    op = xt.graph.create_op(
        "GreaterEqual",
        inputs=[xt, yt],
        output_specs=[(dtypes.bool_, shape)],
        name=name,
    )
    return op.outputs[0]


def _unary(op_type: str, x, name: str, dtype=None) -> Tensor:
    xt = to_tensor(x)
    op = xt.graph.create_op(
        op_type,
        inputs=[xt],
        output_specs=[(dtype or xt.dtype, xt.shape)],
        name=name,
    )
    return op.outputs[0]


def negative(x, name: str = "Neg") -> Tensor:
    return _unary("Neg", x, name)


def square(x, name: str = "Square") -> Tensor:
    return _unary("Square", x, name)


def sqrt(x, name: str = "Sqrt") -> Tensor:
    return _unary("Sqrt", x, name)


def exp(x, name: str = "Exp") -> Tensor:
    return _unary("Exp", x, name)


def sigmoid(x, name: str = "Sigmoid") -> Tensor:
    """Elementwise logistic function ``1 / (1 + exp(-x))``."""
    return _unary("Sigmoid", x, name)


def matmul(a, b, transpose_a: bool = False, transpose_b: bool = False,
           name: str = "MatMul") -> Tensor:
    """Matrix product of rank-2 tensors (or matrix×vector for rank-1 b)."""
    at = to_tensor(a)
    bt = to_tensor(b, graph=at.graph)
    if at.dtype != bt.dtype:
        raise InvalidArgumentError(
            f"matmul dtype mismatch: {at.dtype.name} vs {bt.dtype.name}"
        )
    sa = at.shape
    sb = bt.shape
    rank_b = sb.rank
    if sa.rank not in (None, 2):
        raise InvalidArgumentError(f"matmul lhs must be rank 2, got {sa}")
    if rank_b not in (None, 1, 2):
        raise InvalidArgumentError(f"matmul rhs must be rank 1 or 2, got {sb}")
    if rank_b == 1 and transpose_b:
        raise InvalidArgumentError("cannot transpose a rank-1 rhs")
    m = None if sa.rank is None else sa[1 if transpose_a else 0]
    ka = None if sa.rank is None else sa[0 if transpose_a else 1]
    if rank_b == 1:
        kb = sb[0]
        out_shape = TensorShape([m])
    else:
        kb = None if rank_b is None else sb[1 if transpose_b else 0]
        n = None if rank_b is None else sb[0 if transpose_b else 1]
        out_shape = TensorShape([m, n]) if rank_b is not None else TensorShape(None)
    if ka is not None and kb is not None and ka != kb:
        raise InvalidArgumentError(
            f"matmul inner dimensions disagree: {ka} vs {kb}"
        )
    op = at.graph.create_op(
        "MatMul",
        inputs=[at, bt],
        output_specs=[(at.dtype, out_shape)],
        attrs={"transpose_a": transpose_a, "transpose_b": transpose_b},
        name=name,
    )
    return op.outputs[0]


def dot(x, y, name: str = "Dot") -> Tensor:
    """Inner product of two rank-1 tensors, returning a scalar."""
    xt = to_tensor(x)
    yt = to_tensor(y, graph=xt.graph)
    if xt.dtype != yt.dtype:
        raise InvalidArgumentError(
            f"dot dtype mismatch: {xt.dtype.name} vs {yt.dtype.name}"
        )
    for t in (xt, yt):
        if t.shape.rank not in (None, 1):
            raise InvalidArgumentError(f"dot expects vectors, got {t.shape}")
    op = xt.graph.create_op(
        "Dot",
        inputs=[xt, yt],
        output_specs=[(xt.dtype, TensorShape([]))],
        name=name,
    )
    return op.outputs[0]


def add_n(values: Sequence[Any], name: str = "AddN") -> Tensor:
    tensors = [to_tensor(v) for v in values]
    if not tensors:
        raise InvalidArgumentError("add_n of an empty list")
    shape = tensors[0].shape
    for t in tensors[1:]:
        shape = shape.merge_with(t.shape)
        if t.dtype != tensors[0].dtype:
            raise InvalidArgumentError("add_n requires uniform dtypes")
    op = tensors[0].graph.create_op(
        "AddN",
        inputs=tensors,
        output_specs=[(tensors[0].dtype, shape)],
        name=name,
    )
    return op.outputs[0]


def _reduce(op_type: str, x, axis, keepdims: bool, name: str,
            dtype=None) -> Tensor:
    xt = to_tensor(x)
    rank = xt.shape.rank
    if axis is None:
        axes: Optional[tuple[int, ...]] = None
        out_shape = TensorShape([] if not keepdims else [1] * (rank or 0))
        if rank is None and keepdims:
            out_shape = TensorShape(None)
    else:
        if isinstance(axis, int):
            axis = (axis,)
        axes = tuple(int(a) for a in axis)
        if rank is None:
            out_shape = TensorShape(None)
        else:
            norm = {a % rank for a in axes}
            dims = [
                (1 if keepdims else None) if i in norm else d
                for i, d in enumerate(xt.shape.dims)
            ]
            if not keepdims:
                dims = [d for i, d in enumerate(dims) if i not in norm]
            out_shape = TensorShape(dims)
    op = xt.graph.create_op(
        op_type,
        inputs=[xt],
        output_specs=[(dtype or xt.dtype, out_shape)],
        attrs={"axis": axes, "keepdims": keepdims},
        name=name,
    )
    return op.outputs[0]


def reduce_sum(x, axis=None, keepdims: bool = False, name: str = "Sum") -> Tensor:
    return _reduce("Sum", x, axis, keepdims, name)


def reduce_mean(x, axis=None, keepdims: bool = False, name: str = "Mean") -> Tensor:
    return _reduce("Mean", x, axis, keepdims, name)


def reduce_max(x, axis=None, keepdims: bool = False, name: str = "Max") -> Tensor:
    return _reduce("Max", x, axis, keepdims, name)


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def _elementwise_cost(values, out_spec: SymbolicValue, flops_per_element: float = 1.0) -> Cost:
    n = out_spec.size
    nbytes = sum(runtime_spec(v).nbytes for v in values) + out_spec.nbytes
    return Cost(flops=flops_per_element * n, mem_bytes=nbytes, kind="compute")


def _binary_kernel(np_fn, flops_per_element: float = 1.0):
    def kernel(op, inputs, ctx):
        out_spec = elementwise_spec(inputs, dtype=op.outputs[0].dtype)
        cost = _elementwise_cost(inputs, out_spec, flops_per_element)
        if any_symbolic(inputs):
            return [out_spec], cost
        a, b = (np.asarray(v) for v in inputs)
        out = np_fn(a, b).astype(op.outputs[0].dtype.np_dtype, copy=False)
        return [out], cost

    return kernel


register_kernel("Add", pure=True)(_binary_kernel(np.add))
register_kernel("Sub", pure=True)(_binary_kernel(np.subtract))
register_kernel("Mul", pure=True)(_binary_kernel(np.multiply))
register_kernel("Div", pure=True)(_binary_kernel(np.divide))
register_kernel("Maximum", pure=True)(_binary_kernel(np.maximum))
register_kernel("Minimum", pure=True)(_binary_kernel(np.minimum))


def _unary_kernel(np_fn, flops_per_element: float = 1.0):
    def kernel(op, inputs, ctx):
        (x,) = inputs
        out_spec = elementwise_spec(inputs, dtype=op.outputs[0].dtype)
        cost = _elementwise_cost(inputs, out_spec, flops_per_element)
        if isinstance(x, SymbolicValue):
            return [out_spec], cost
        out = np_fn(np.asarray(x)).astype(op.outputs[0].dtype.np_dtype, copy=False)
        return [out], cost

    return kernel


def _sigmoid_np(x):
    return 1.0 / (1.0 + np.exp(-x))


register_kernel("Neg", pure=True)(_unary_kernel(np.negative))
register_kernel("Square", pure=True)(_unary_kernel(np.square))
register_kernel("Sqrt", pure=True)(_unary_kernel(np.sqrt, flops_per_element=4.0))
register_kernel("Exp", pure=True)(_unary_kernel(np.exp, flops_per_element=8.0))
register_kernel("Sigmoid", pure=True)(
    _unary_kernel(_sigmoid_np, flops_per_element=10.0)
)


@register_kernel("GreaterEqual", pure=True)
def _greater_equal_kernel(op, inputs, ctx):
    out_spec = elementwise_spec(inputs, dtype=op.outputs[0].dtype)
    cost = _elementwise_cost(inputs, out_spec)
    if any_symbolic(inputs):
        return [out_spec], cost
    a, b = (np.asarray(v) for v in inputs)
    return [np.greater_equal(a, b)], cost


@register_kernel("MatMul", pure=True)
def _matmul_kernel(op, inputs, ctx):
    a, b = inputs
    ta = op.get_attr("transpose_a", False)
    tb = op.get_attr("transpose_b", False)
    sa = runtime_shape(a)
    sb = runtime_shape(b)
    m, k = (sa[1], sa[0]) if ta else (sa[0], sa[1])
    if len(sb) == 1:
        n = 1
        out_shape: tuple[int, ...] = (m,)
    else:
        kb, n = (sb[1], sb[0]) if tb else (sb[0], sb[1])
        out_shape = (m, n)
    dtype = runtime_spec(a).dtype
    # Complex multiply-add counts 4x real flops; the figures only use real.
    factor = 4.0 if dtype.is_complex else 1.0
    flops = factor * 2.0 * m * k * n
    nbytes = (m * k + k * n + m * n) * dtype.size
    cost = Cost(flops=flops, mem_bytes=nbytes, kind="compute")
    if any_symbolic(inputs):
        return [make_symbolic(out_shape, dtype)], cost
    am = np.asarray(a).T if ta else np.asarray(a)
    bm = np.asarray(b).T if tb else np.asarray(b)
    return [am @ bm], cost


@register_kernel("Dot", pure=True)
def _dot_kernel(op, inputs, ctx):
    a, b = inputs
    n = runtime_spec(a).size
    dtype = runtime_spec(a).dtype
    factor = 4.0 if dtype.is_complex else 1.0
    cost = Cost(
        flops=factor * 2.0 * n,
        mem_bytes=2 * n * dtype.size,
        kind="compute",
    )
    if any_symbolic(inputs):
        return [make_symbolic((), dtype)], cost
    return [np.asarray(np.dot(np.asarray(a), np.asarray(b)))], cost


@register_kernel("AddN", pure=True)
def _add_n_kernel(op, inputs, ctx):
    out_spec = elementwise_spec(inputs, dtype=op.outputs[0].dtype)
    cost = Cost(
        flops=(len(inputs) - 1) * out_spec.size,
        mem_bytes=sum(runtime_spec(v).nbytes for v in inputs) + out_spec.nbytes,
        kind="compute",
    )
    if any_symbolic(inputs):
        return [out_spec], cost
    total = np.zeros(out_spec.shape, dtype=out_spec.dtype.np_dtype)
    for v in inputs:
        total = total + np.asarray(v)
    return [total], cost


def _reduce_kernel(np_fn, extra_flops: float = 1.0):
    def kernel(op, inputs, ctx):
        (x,) = inputs
        axes = op.get_attr("axis")
        keepdims = op.get_attr("keepdims", False)
        spec = runtime_spec(x)
        cost = Cost(
            flops=extra_flops * spec.size,
            mem_bytes=spec.nbytes,
            kind="compute",
        )
        if isinstance(x, SymbolicValue):
            shape = list(spec.shape)
            rank = len(shape)
            norm = set(range(rank)) if axes is None else {a % rank for a in axes}
            dims = [1 if i in norm else d for i, d in enumerate(shape)]
            if not keepdims:
                dims = [d for i, d in enumerate(dims) if i not in norm]
            return [make_symbolic(dims, spec.dtype)], cost
        out = np_fn(np.asarray(x), axis=axes, keepdims=keepdims)
        return [np.asarray(out, dtype=op.outputs[0].dtype.np_dtype)], cost

    return kernel


register_kernel("Sum", pure=True)(_reduce_kernel(np.sum))
register_kernel("Mean", pure=True)(_reduce_kernel(np.mean, extra_flops=1.0))
register_kernel("Max", pure=True)(_reduce_kernel(np.max))


# ---------------------------------------------------------------------------
# generation contracts (consumed by the repro.fuzz operator catalog)
# ---------------------------------------------------------------------------

_NUMERIC = ("float32", "float64", "int32")
# Float-only: their kernels route through float intermediates whose cast
# back to int is either lossy in surprising ways (Mean) or undefined for
# inf/NaN (Div by zero, Sqrt of negatives).
_FLOATS = ("float32", "float64")

for _op, _builder in (("Add", "add"), ("Sub", "subtract"),
                      ("Mul", "multiply"), ("Maximum", "maximum"),
                      ("Minimum", "minimum")):
    declare_op_constraint(_op, builder=_builder, arity=(2, 2),
                          dtypes=_NUMERIC, shape_rule="elementwise_broadcast")
declare_op_constraint("Div", builder="divide", arity=(2, 2),
                      dtypes=_FLOATS, shape_rule="elementwise_broadcast")
declare_op_constraint("GreaterEqual", builder="greater_equal", arity=(2, 2),
                      dtypes=_NUMERIC, shape_rule="elementwise_broadcast")
declare_op_constraint("Neg", builder="negative", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="unary_same")
declare_op_constraint("Square", builder="square", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="unary_same")
declare_op_constraint("Sqrt", builder="sqrt", arity=(1, 1),
                      dtypes=_FLOATS, shape_rule="unary_same")
declare_op_constraint("Exp", builder="exp", arity=(1, 1),
                      dtypes=_FLOATS, shape_rule="unary_same")
declare_op_constraint("Sigmoid", builder="sigmoid", arity=(1, 1),
                      dtypes=_FLOATS, shape_rule="unary_same")
declare_op_constraint("MatMul", builder="matmul", arity=(2, 2),
                      dtypes=_FLOATS, shape_rule="matmul")
declare_op_constraint("Dot", builder="dot", arity=(2, 2),
                      dtypes=_FLOATS, shape_rule="dot")
declare_op_constraint("AddN", builder="add_n", arity=(2, 4),
                      dtypes=_NUMERIC, shape_rule="same_shape_n")
declare_op_constraint("Sum", builder="reduce_sum", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="reduce")
declare_op_constraint("Mean", builder="reduce_mean", arity=(1, 1),
                      dtypes=_FLOATS, shape_rule="reduce")
declare_op_constraint("Max", builder="reduce_max", arity=(1, 1),
                      dtypes=_NUMERIC, shape_rule="reduce")
