"""Kernel registry and runtime state containers."""

from repro.core.kernels.registry import (
    Cost,
    KernelContext,
    ResourceManager,
    get_kernel,
    register_kernel,
)

__all__ = ["Cost", "KernelContext", "ResourceManager", "get_kernel", "register_kernel"]
