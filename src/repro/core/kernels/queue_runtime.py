"""Runtime state of a FIFO queue.

The graph-level :class:`~repro.core.ops.queue_ops.FIFOQueue` compiles to
ops whose kernels operate on a :class:`SimQueue` held in the owning task's
:class:`~repro.core.kernels.registry.ResourceManager`. Blocking semantics
(enqueue on full, dequeue on empty) ride on the DES
:class:`~repro.simnet.resources.Store`.
"""

from __future__ import annotations

from typing import Any, Sequence


from repro.errors import CancelledError, OutOfRangeError
from repro.simnet.events import Environment
from repro.simnet.resources import Store

__all__ = ["SimQueue"]


class SimQueue:
    """A bounded multi-component FIFO queue with TF close semantics.

    * ``enqueue`` blocks while the queue holds ``capacity`` elements and
      fails with :class:`CancelledError` once the queue is closed.
    * ``dequeue`` blocks while empty; after ``close()`` it drains remaining
      elements, then fails with :class:`OutOfRangeError` (exactly TF's
      behaviour, which the paper's reducers rely on for shutdown).
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        num_components: int,
        name: str,
    ):
        self.env = env
        self.capacity = capacity
        self.num_components = num_components
        self.name = name
        self._store = Store(env, capacity=capacity, name=name)
        self._closed = False
        # Dequeue waiters blocked on an *empty* queue must be failed when the
        # queue closes; the Store handles that via fail_all_waiters.

    # -- state ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def size(self) -> int:
        return len(self._store)

    # -- operations --------------------------------------------------------
    def enqueue(self, components: Sequence[Any]):
        """Event that succeeds once the element is accepted."""
        if self._closed:
            event = self.env.event()
            event.fail(
                CancelledError(f"Queue {self.name!r} is closed; enqueue rejected")
            )
            return event
        if len(components) != self.num_components:
            event = self.env.event()
            from repro.errors import InvalidArgumentError

            event.fail(
                InvalidArgumentError(
                    f"Queue {self.name!r} expects {self.num_components} "
                    f"components, got {len(components)}"
                )
            )
            return event
        return self._store.put(tuple(components))

    def try_enqueue(self, components: Sequence[Any]) -> bool:
        """Accept synchronously when there is room; False falls back to
        the event-based :meth:`enqueue` (including all failure cases)."""
        if self._closed or len(components) != self.num_components:
            return False
        return self._store.try_put(tuple(components))

    def dequeue(self):
        """Event that succeeds with a components tuple."""
        if self._closed and len(self._store) == 0 and self._store.put_queue_length == 0:
            event = self.env.event()
            event.fail(
                OutOfRangeError(f"Queue {self.name!r} is closed and empty")
            )
            return event
        return self._store.get()

    def try_dequeue(self):
        """``(True, components)`` when an element is ready synchronously;
        ``(False, None)`` falls back to the event-based :meth:`dequeue`."""
        return self._store.try_get()

    def close(self, cancel_pending_enqueues: bool = False) -> None:
        self._closed = True
        # Pending blocked getters can never be satisfied (no new enqueues
        # will arrive beyond those already blocked as putters).
        if cancel_pending_enqueues:
            self._store.fail_all_waiters(
                lambda: CancelledError(f"Queue {self.name!r} closed; op cancelled")
            )
        else:
            # Allow blocked putters to land, but fail starved getters once
            # there is provably nothing left to deliver.
            if self._store.put_queue_length == 0 and len(self._store) == 0:
                self._store.fail_all_waiters(
                    lambda: OutOfRangeError(f"Queue {self.name!r} is closed and empty")
                )

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<SimQueue {self.name!r} size={self.size()}/{self.capacity} {state}>"
        )
