"""Kernel registry, cost accounting, and per-task runtime state.

A *kernel* implements one op type. Its signature is::

    kernel(op, inputs, ctx) -> (outputs, Cost)

where ``inputs``/``outputs`` are lists of runtime values (ndarrays or
:class:`~repro.core.tensor.SymbolicValue`). A kernel may instead be a
*generator* that yields DES events (for blocking ops such as queue dequeue
or file I/O) and finally returns the same ``(outputs, Cost)`` pair.

The :class:`Cost` describes the work done; the executing device model
converts it to simulated time. Kernels never sleep on their own except by
yielding events.
"""

from __future__ import annotations

import contextlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import NotFoundError, UnimplementedError

__all__ = [
    "Cost",
    "KernelContext",
    "OpConstraint",
    "ResourceManager",
    "register_kernel",
    "get_kernel",
    "has_kernel",
    "supported_device_types",
    "registered_op_types",
    "is_pure",
    "is_stateful",
    "is_graph_only",
    "is_inline",
    "pure_op_types",
    "inline_op_types",
    "declare_op_constraint",
    "op_constraint",
    "declared_constraints",
    "override_kernel",
]


@dataclass
class Cost:
    """Resource demand of one kernel execution.

    Attributes:
        flops: floating point operations performed on the device.
        mem_bytes: device-memory bytes streamed (drives memory-bound ops).
        io_bytes: parallel-filesystem bytes moved (tile load/store).
        host_bytes: bytes processed by host Python/NumPy (merge loops); the
            paper shows these serial host phases dominating the FFT app.
        kind: "compute" | "memcpy" | "io" | "sync" | "none". "sync" ops do
            not occupy the device while they block.
    """

    flops: float = 0.0
    mem_bytes: float = 0.0
    io_bytes: float = 0.0
    host_bytes: float = 0.0
    kind: str = "compute"

    @staticmethod
    def none() -> "Cost":
        return Cost(kind="none")

    @staticmethod
    def sync() -> "Cost":
        return Cost(kind="sync")


class ResourceManager:
    """Stateful resources owned by one task (server): variables, queues,
    dataset iterators, and saved RNG lanes.

    In TensorFlow these live in the C++ runtime's per-worker resource
    manager, which is why variables placed on a parameter server persist
    across sessions — the same semantics apply here.
    """

    def __init__(self, name: str = "local"):
        self.name = name
        self.variables: dict[str, Any] = {}
        self.queues: dict[str, Any] = {}
        self.iterators: dict[str, Any] = {}
        self.rng_counters: dict[str, int] = {}

    def next_rng_counter(self, op_name: str) -> int:
        value = self.rng_counters.get(op_name, 0)
        self.rng_counters[op_name] = value + 1
        return value

    def clear(self) -> None:
        self.variables.clear()
        self.queues.clear()
        self.iterators.clear()
        self.rng_counters.clear()


@dataclass
class KernelContext:
    """Everything a kernel may need at execution time."""

    symbolic: bool = False
    feeds: dict[str, Any] = field(default_factory=dict)
    resources: ResourceManager = field(default_factory=ResourceManager)
    env: Any = None  # simnet Environment, None in pure-eager unit tests
    device: Any = None  # simulated device executing the op
    worker: Any = None  # TaskRuntime: node/machine access for io kernels
    run_id: int = 0
    graph_seed: Optional[int] = None

    def filesystem(self):
        """The simulated parallel filesystem, if a machine is attached."""
        if self.worker is not None and getattr(self.worker, "node", None) is not None:
            return self.worker.node.machine.filesystem
        return None


_KERNELS: dict[str, Callable] = {}
_DEVICE_SUPPORT: dict[str, tuple[str, ...]] = {}
_PURE: set[str] = set()
_STATEFUL: set[str] = set()
_GRAPH_ONLY: set[str] = set()
_INLINE: set[str] = set()


def register_kernel(
    op_type: str,
    devices: tuple[str, ...] = ("cpu", "gpu"),
    *,
    pure: bool = False,
    stateful: bool = False,
    graph_only: bool = False,
    inline: bool = False,
):
    """Class/function decorator registering a kernel for ``op_type``.

    ``devices`` lists device types with an implementation; placement uses
    it for soft-placement decisions (ops with CPU-only kernels fall back to
    the host, mirroring TF soft device placement).

    The remaining flags make the registry the single source of op
    metadata, consumed across layers instead of per-module allowlists:

    * ``pure`` — the kernel is a pure function of its inputs and static
      attributes (no resources, RNG lanes, queues, I/O, or sim-time side
      effects). Only pure ops may be constant-folded or CSE-merged by the
      plan-time optimizer.
    * ``stateful`` — executing the kernel mutates task state (variable
      writes, queue traffic, file writes). The tracing frontend fetches
      unconsumed stateful ops so traced side effects are not pruned.
    * ``graph_only`` — the op only makes sense under a Session (it blocks
      on simulated runtime events or manages runtime resources). Kernels
      written as generators are graph-only implicitly; this flag marks the
      non-generator stragglers (queue bookkeeping, iterators).
    * ``inline`` — the kernel is a plain function that never yields,
      never blocks, and always resolves to a zero-duration cost (kind
      "none"/"sync" with no device seconds): metadata ops, constants,
      variable reads. The executor dispatches these synchronously off its
      ready list (no calendar events) while still honouring device-FIFO
      order, so the flag is a promise about *cost*, not just purity.
    """

    def wrap(fn: Callable) -> Callable:
        if op_type in _KERNELS:
            raise UnimplementedError(f"Duplicate kernel registration: {op_type}")
        if inline and (graph_only or inspect.isgeneratorfunction(fn)):
            raise UnimplementedError(
                f"{op_type}: inline=True needs a non-blocking plain-function "
                f"kernel (generator/graph_only kernels advance the clock)"
            )
        _KERNELS[op_type] = fn
        _DEVICE_SUPPORT[op_type] = tuple(devices)
        if pure:
            _PURE.add(op_type)
        if stateful:
            _STATEFUL.add(op_type)
        if graph_only or inspect.isgeneratorfunction(fn):
            _GRAPH_ONLY.add(op_type)
        if inline:
            _INLINE.add(op_type)
        return fn

    return wrap


def get_kernel(op_type: str) -> Callable:
    try:
        return _KERNELS[op_type]
    except KeyError:
        raise NotFoundError(f"No kernel registered for op type {op_type!r}") from None


def has_kernel(op_type: str) -> bool:
    return op_type in _KERNELS


def supported_device_types(op_type: str) -> tuple[str, ...]:
    return _DEVICE_SUPPORT.get(op_type, ("cpu", "gpu"))


def registered_op_types() -> tuple[str, ...]:
    """Every op type with a kernel, sorted (drives coverage sweeps)."""
    return tuple(sorted(_KERNELS))


def is_pure(op_type: str) -> bool:
    """Whether the op is a pure function of inputs + static attributes."""
    return op_type in _PURE


def is_stateful(op_type: str) -> bool:
    """Whether executing the op mutates task-owned runtime state."""
    return op_type in _STATEFUL


def is_graph_only(op_type: str) -> bool:
    """Whether the op requires a Session (blocks on the simulated runtime)."""
    return op_type in _GRAPH_ONLY


def is_inline(op_type: str) -> bool:
    """Whether the op's kernel is zero-duration and inline-dispatchable."""
    return op_type in _INLINE


def pure_op_types() -> frozenset[str]:
    return frozenset(_PURE)


def inline_op_types() -> frozenset[str]:
    return frozenset(_INLINE)


# ---------------------------------------------------------------------------
# declarative op constraints
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OpConstraint:
    """Machine-readable generation contract for one op type.

    Declared next to the op's builder (the single place that knows the
    call convention) and consumed by machinery that must *construct*
    valid calls without hand-maintained per-op knowledge — today the
    differential graph fuzzer (:mod:`repro.fuzz`), whose catalog crosses
    these constraints with the registry's pure/stateful/graph-only flags
    and the gradient registry.

    Attributes:
        op_type: the graph op type the builder creates.
        builder: name of the flat-namespace builder
            (``repro.core.ops.__all__``) that constructs the op.
        arity: ``(min, max)`` count of *tensor* inputs the builder
            accepts; ``max`` is a practical cap for generation, not a
            builder limit (``add_n`` takes any number).
        dtypes: input element-type names the kernel supports bit-exactly
            (subset of ``{"float32", "float64", "int32", "bool",
            "complex128"}``).
        shape_rule: how output shapes relate to input shapes — the
            dispatch key a generator uses to sample valid input shapes
            and static attributes. One of: ``"source"`` (no tensor
            inputs), ``"unary_same"``, ``"elementwise_broadcast"``,
            ``"same_shape_n"``, ``"matmul"``, ``"dot"``, ``"reduce"``,
            ``"cast"``, ``"reshape"``, ``"transpose"``, ``"concat"``,
            ``"split"``, ``"stack"``, ``"squeeze"``, ``"expand_dims"``,
            ``"slice"``, ``"variable_update"``, ``"collective"``.
    """

    op_type: str
    builder: str
    arity: tuple[int, int]
    dtypes: tuple[str, ...]
    shape_rule: str


_CONSTRAINTS: dict[str, OpConstraint] = {}


def declare_op_constraint(
    op_type: str,
    *,
    builder: str,
    arity: tuple[int, int],
    dtypes: tuple[str, ...] = ("float32", "float64", "int32"),
    shape_rule: str,
) -> OpConstraint:
    """Record the generation contract for ``op_type`` (idempotent per type)."""
    if op_type in _CONSTRAINTS:
        raise UnimplementedError(
            f"Duplicate op-constraint declaration: {op_type}"
        )
    constraint = OpConstraint(
        op_type=op_type,
        builder=builder,
        arity=(int(arity[0]), int(arity[1])),
        dtypes=tuple(dtypes),
        shape_rule=shape_rule,
    )
    _CONSTRAINTS[op_type] = constraint
    return constraint


def op_constraint(op_type: str) -> Optional[OpConstraint]:
    """The declared constraint for ``op_type``, or None if undeclared."""
    return _CONSTRAINTS.get(op_type)


def declared_constraints() -> dict[str, OpConstraint]:
    """Every declared constraint, keyed by op type (a copy)."""
    return dict(_CONSTRAINTS)


@contextlib.contextmanager
def override_kernel(op_type: str, fn: Callable) -> Iterator[Callable]:
    """Temporarily replace ``op_type``'s kernel (restores on exit).

    Test-only: the fuzz harness's planted-defect tests register a
    deliberately wrong kernel, prove the differential matrix catches it
    and the shrinker minimizes it, then restore the real kernel. The
    device-support table and purity flags are left untouched — a planted
    bug must look exactly like the op it impersonates.

    Caveat: plan-time constant folding memoizes folded values on the
    *graph object*, so a graph executed before the override can replay
    stale results under it. Build a fresh graph inside the override
    scope (the fuzz harness materializes one per cell run).
    """
    try:
        original = _KERNELS[op_type]
    except KeyError:
        raise NotFoundError(
            f"No kernel registered for op type {op_type!r}"
        ) from None
    _KERNELS[op_type] = fn
    try:
        yield original
    finally:
        _KERNELS[op_type] = original
