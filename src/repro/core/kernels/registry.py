"""Kernel registry, cost accounting, and per-task runtime state.

A *kernel* implements one op type. Its signature is::

    kernel(op, inputs, ctx) -> (outputs, Cost)

where ``inputs``/``outputs`` are lists of runtime values (ndarrays or
:class:`~repro.core.tensor.SymbolicValue`). A kernel may instead be a
*generator* that yields DES events (for blocking ops such as queue dequeue
or file I/O) and finally returns the same ``(outputs, Cost)`` pair.

The :class:`Cost` describes the work done; the executing device model
converts it to simulated time. Kernels never sleep on their own except by
yielding events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import NotFoundError, UnimplementedError

__all__ = [
    "Cost",
    "KernelContext",
    "ResourceManager",
    "register_kernel",
    "get_kernel",
    "has_kernel",
    "supported_device_types",
]


@dataclass
class Cost:
    """Resource demand of one kernel execution.

    Attributes:
        flops: floating point operations performed on the device.
        mem_bytes: device-memory bytes streamed (drives memory-bound ops).
        io_bytes: parallel-filesystem bytes moved (tile load/store).
        host_bytes: bytes processed by host Python/NumPy (merge loops); the
            paper shows these serial host phases dominating the FFT app.
        kind: "compute" | "memcpy" | "io" | "sync" | "none". "sync" ops do
            not occupy the device while they block.
    """

    flops: float = 0.0
    mem_bytes: float = 0.0
    io_bytes: float = 0.0
    host_bytes: float = 0.0
    kind: str = "compute"

    @staticmethod
    def none() -> "Cost":
        return Cost(kind="none")

    @staticmethod
    def sync() -> "Cost":
        return Cost(kind="sync")


class ResourceManager:
    """Stateful resources owned by one task (server): variables, queues,
    dataset iterators, and saved RNG lanes.

    In TensorFlow these live in the C++ runtime's per-worker resource
    manager, which is why variables placed on a parameter server persist
    across sessions — the same semantics apply here.
    """

    def __init__(self, name: str = "local"):
        self.name = name
        self.variables: dict[str, Any] = {}
        self.queues: dict[str, Any] = {}
        self.iterators: dict[str, Any] = {}
        self.rng_counters: dict[str, int] = {}

    def next_rng_counter(self, op_name: str) -> int:
        value = self.rng_counters.get(op_name, 0)
        self.rng_counters[op_name] = value + 1
        return value

    def clear(self) -> None:
        self.variables.clear()
        self.queues.clear()
        self.iterators.clear()
        self.rng_counters.clear()


@dataclass
class KernelContext:
    """Everything a kernel may need at execution time."""

    symbolic: bool = False
    feeds: dict[str, Any] = field(default_factory=dict)
    resources: ResourceManager = field(default_factory=ResourceManager)
    env: Any = None  # simnet Environment, None in pure-eager unit tests
    device: Any = None  # simulated device executing the op
    worker: Any = None  # TaskRuntime: node/machine access for io kernels
    run_id: int = 0
    graph_seed: Optional[int] = None

    def filesystem(self):
        """The simulated parallel filesystem, if a machine is attached."""
        if self.worker is not None and getattr(self.worker, "node", None) is not None:
            return self.worker.node.machine.filesystem
        return None


_KERNELS: dict[str, Callable] = {}
_DEVICE_SUPPORT: dict[str, tuple[str, ...]] = {}


def register_kernel(op_type: str, devices: tuple[str, ...] = ("cpu", "gpu")):
    """Class/function decorator registering a kernel for ``op_type``.

    ``devices`` lists device types with an implementation; placement uses
    it for soft-placement decisions (ops with CPU-only kernels fall back to
    the host, mirroring TF soft device placement).
    """

    def wrap(fn: Callable) -> Callable:
        if op_type in _KERNELS:
            raise UnimplementedError(f"Duplicate kernel registration: {op_type}")
        _KERNELS[op_type] = fn
        _DEVICE_SUPPORT[op_type] = tuple(devices)
        return fn

    return wrap


def get_kernel(op_type: str) -> Callable:
    try:
        return _KERNELS[op_type]
    except KeyError:
        raise NotFoundError(f"No kernel registered for op type {op_type!r}") from None


def has_kernel(op_type: str) -> bool:
    return op_type in _KERNELS


def supported_device_types(op_type: str) -> tuple[str, ...]:
    return _DEVICE_SUPPORT.get(op_type, ("cpu", "gpu"))
