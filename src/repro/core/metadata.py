"""Run metadata: per-op execution statistics and transfer records.

The analog of TF's ``RunMetadata``/``StepStats``, consumed by
:mod:`repro.core.timeline` to produce Chrome-trace visualisations like the
paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeStats", "PassStats", "TransferStats", "RunMetadata", "RunOptions"]


@dataclass
class RunOptions:
    """Per-run options (trace collection)."""

    trace_level: int = 0  # 0 = NO_TRACE, 1 = FULL_TRACE

    NO_TRACE = 0
    FULL_TRACE = 1


@dataclass
class NodeStats:
    """Timing of one op execution on one device."""

    device: str
    op_name: str
    op_type: str
    start: float  # simulated seconds
    end: float
    out_bytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TransferStats:
    """One cross-device tensor movement."""

    key: str
    src_device: str
    dst_device: str
    nbytes: int
    start: float
    end: float
    protocol: str

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        """Achieved bytes/second (0 for instantaneous/zero-byte moves)."""
        if self.end <= self.start:
            return 0.0
        return self.nbytes / (self.end - self.start)


@dataclass
class PassStats:
    """Effect of one plan-time optimization pass (Grappler-style).

    ``nodes_before``/``nodes_after`` count schedulable units (graph ops for
    graph-level passes, plan items for plan-level passes); ``detail`` holds
    per-pass counters such as folded/merged/spliced node counts.
    """

    name: str
    nodes_before: int = 0
    nodes_after: int = 0
    detail: dict = field(default_factory=dict)

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


@dataclass
class RunMetadata:
    """Everything recorded during one session run."""

    step_stats: list[NodeStats] = field(default_factory=list)
    transfers: list[TransferStats] = field(default_factory=list)
    start_time: float = 0.0
    end_time: float = 0.0
    # Plan-time optimizer effects (one entry per pass that ran when the
    # plan for this run was built; empty when optimization is disabled).
    pass_stats: list[PassStats] = field(default_factory=list)
    # Executor accounting: total schedulable items in the plan, how many
    # were dispatched inline off the ready list (zero-cost fast path) and
    # how many ran as full simulator processes.
    plan_items: int = 0
    fast_path_items: int = 0
    process_items: int = 0
    # Rank legs of lowered collective ops executed during the run (one
    # CollectiveAllReduce over W workers contributes W).
    collective_items: int = 0
    # Kernel-fusion accounting (OptimizerOptions.kernel_fusion): number
    # of compiled "fused" items in the plan, and how many original op
    # items those chains absorbed. plan_items counts fused chains as one.
    compiled_items: int = 0
    fused_op_count: int = 0
    # How many fused chains executed on the merged single-event path
    # this run (admission: chain statically mergeable AND every
    # same-device FIFO-capable non-descendant already complete). The
    # remainder ran member-by-member through the chain cursor.
    merged_chains: int = 0
    # Collective op name -> the communication schedule the lowering chose
    # ("ring"/"tree"/...), with the builders' algorithm="auto" resolved
    # per payload and world size at plan-build time.
    collective_algorithms: dict = field(default_factory=dict)
    # Frontend cache accounting. ``plan_cache_hit`` says whether *this*
    # run reused a cached execution plan; the ``*_hits``/``*_misses``
    # pairs are the owning session's / traced function's cumulative
    # counters at the time of the run, so callers can watch cache
    # behaviour without reaching into Session.plan_cache_info().
    plan_cache_hit: bool = False
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    # Static-verification accounting: ``plan_verified`` is True when the
    # plan this run executed went through the analysis layer
    # (SessionConfig.verify_plans); ``verifier_warnings`` counts
    # non-fatal findings (e.g. unordered commutative accumulations) the
    # verifier attached to the plan.
    plan_verified: bool = False
    verifier_warnings: int = 0
    # Fault-tolerance accounting: deadline expiries observed during the
    # run (collective join / recv / run watchdog), transport sends
    # retried under the session's RetryPolicy, and plan items parked
    # because their task was down when they became ready.
    deadline_exceeded: int = 0
    retries: int = 0
    stalled_items: int = 0

    @property
    def wall_time(self) -> float:
        return self.end_time - self.start_time

    def stats_for_device(self, device: str) -> list[NodeStats]:
        return [s for s in self.step_stats if s.device == device]

    def total_bytes_transferred(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def busiest_ops(self, n: int = 10) -> list[NodeStats]:
        return sorted(self.step_stats, key=lambda s: s.duration, reverse=True)[:n]

    def total_nodes_optimized(self) -> int:
        """Schedulable units removed by all plan-time passes combined."""
        return sum(p.nodes_removed for p in self.pass_stats)
