"""Run metadata: per-op execution statistics and transfer records.

The analog of TF's ``RunMetadata``/``StepStats``, consumed by
:mod:`repro.core.timeline` to produce Chrome-trace visualisations like the
paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["NodeStats", "TransferStats", "RunMetadata", "RunOptions"]


@dataclass
class RunOptions:
    """Per-run options (trace collection)."""

    trace_level: int = 0  # 0 = NO_TRACE, 1 = FULL_TRACE

    NO_TRACE = 0
    FULL_TRACE = 1


@dataclass
class NodeStats:
    """Timing of one op execution on one device."""

    device: str
    op_name: str
    op_type: str
    start: float  # simulated seconds
    end: float
    out_bytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TransferStats:
    """One cross-device tensor movement."""

    key: str
    src_device: str
    dst_device: str
    nbytes: int
    start: float
    end: float
    protocol: str

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        """Achieved bytes/second (0 for instantaneous/zero-byte moves)."""
        if self.end <= self.start:
            return 0.0
        return self.nbytes / (self.end - self.start)


@dataclass
class RunMetadata:
    """Everything recorded during one session run."""

    step_stats: list[NodeStats] = field(default_factory=list)
    transfers: list[TransferStats] = field(default_factory=list)
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def wall_time(self) -> float:
        return self.end_time - self.start_time

    def stats_for_device(self, device: str) -> list[NodeStats]:
        return [s for s in self.step_stats if s.device == device]

    def total_bytes_transferred(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def busiest_ops(self, n: int = 10) -> list[NodeStats]:
        return sorted(self.step_stats, key=lambda s: s.duration, reverse=True)[:n]
