"""Device specifications and op placement.

Implements TF's placement rules the paper describes in Section II:

* explicit pinning via ``tf.device()`` strings (possibly partial);
* *simple placement* — "if an operation supports both CPU and GPU
  execution, GPU devices will be chosen ... the first GPU";
* *soft placement* — "when an operation is pinned to a device with no
  supporting computation kernel, it can be automatically pinned to
  another device with a supporting kernel instead".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.kernels.registry import supported_device_types
from repro.errors import InvalidArgumentError, NotFoundError

__all__ = ["DeviceSpec", "Placer", "canonical_device"]

_PART_RE = re.compile(r"^(job|replica|task|device|cpu|gpu)(?::(.*))?$", re.IGNORECASE)


@dataclass
class DeviceSpec:
    """A parsed, possibly partial device string."""

    job: Optional[str] = None
    task: Optional[int] = None
    device_type: Optional[str] = None  # "cpu" | "gpu"
    device_index: Optional[int] = None

    @classmethod
    def parse(cls, spec: str) -> "DeviceSpec":
        """Parse strings like ``/job:ps/task:0/device:GPU:1`` or ``/gpu:0``."""
        result = cls()
        if not spec:
            return result
        for part in spec.strip("/").split("/"):
            if not part:
                continue
            lowered = part.lower()
            if lowered.startswith("job:"):
                result.job = part[4:]
            elif lowered.startswith("replica:"):
                continue  # accepted and ignored (always replica 0)
            elif lowered.startswith("task:"):
                result.task = _int_field(part[5:], spec)
            elif lowered.startswith("device:"):
                rest = part[7:]
                if ":" in rest:
                    dtype, _, idx = rest.partition(":")
                    result.device_type = _dtype_field(dtype, spec)
                    result.device_index = _int_field(idx, spec) if idx != "*" else None
                else:
                    result.device_type = _dtype_field(rest, spec)
            elif lowered.startswith("cpu") or lowered.startswith("gpu"):
                dtype, _, idx = part.partition(":")
                result.device_type = _dtype_field(dtype, spec)
                if idx:
                    result.device_index = _int_field(idx, spec)
            else:
                raise InvalidArgumentError(f"Cannot parse device part {part!r} in {spec!r}")
        return result

    def merge_defaults(self, other: "DeviceSpec") -> "DeviceSpec":
        """Fill unset fields from ``other``."""
        return DeviceSpec(
            job=self.job if self.job is not None else other.job,
            task=self.task if self.task is not None else other.task,
            device_type=self.device_type if self.device_type is not None else other.device_type,
            device_index=self.device_index if self.device_index is not None else other.device_index,
        )

    def to_string(self) -> str:
        parts = []
        if self.job is not None:
            parts.append(f"job:{self.job}")
        if self.task is not None:
            parts.append(f"task:{self.task}")
        if self.device_type is not None:
            idx = self.device_index if self.device_index is not None else 0
            parts.append(f"device:{self.device_type}:{idx}")
        return "/" + "/".join(parts) if parts else ""

    def __str__(self) -> str:
        return self.to_string()


def _int_field(text: str, spec: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise InvalidArgumentError(f"Bad integer in device spec {spec!r}") from None


def _dtype_field(text: str, spec: str) -> str:
    lowered = text.lower()
    if lowered not in ("cpu", "gpu"):
        raise InvalidArgumentError(
            f"Unknown device type {text!r} in {spec!r} (cpu/gpu supported)"
        )
    return lowered


def canonical_device(job: str, task: int, device_type: str, index: int) -> str:
    return f"/job:{job}/task:{task}/device:{device_type}:{index}"


class Placer:
    """Assigns every op a fully-qualified device.

    Args:
        task_devices: ``(job, task) -> {"cpu": n_cpu, "gpu": n_gpu}`` — the
            devices each task exposes.
        default_job/default_task: where unpinned ops land (the session's
            master task, as in TF).
        allow_soft_placement: relocate ops whose pinned device lacks a
            kernel or does not exist.
    """

    def __init__(
        self,
        task_devices: dict[tuple[str, int], dict[str, int]],
        default_job: str,
        default_task: int,
        allow_soft_placement: bool = True,
    ):
        self.task_devices = task_devices
        self.default_job = default_job
        self.default_task = default_task
        self.allow_soft = allow_soft_placement

    def place(self, op) -> str:
        return self.resolve_device(op.device, op.type, name=op.name)

    def resolve_device(self, device_str: str, op_type: str,
                       name: str = "<device>") -> str:
        """Resolve a raw (possibly partial) device string for ``op_type``.

        The same rules as :meth:`place`, callable on a bare string — the
        partitioner uses it to resolve the per-rank device list of a
        collective op, whose legs land on many devices while the op
        itself carries a single placement.
        """
        requested = DeviceSpec.parse(device_str)
        spec = requested.merge_defaults(
            DeviceSpec(job=self.default_job, task=self.default_task)
        )
        key = (spec.job, spec.task)
        if key not in self.task_devices:
            raise NotFoundError(
                f"Op {name!r} requests unknown task /job:{spec.job}/task:{spec.task}"
            )
        available = self.task_devices[key]
        supported = supported_device_types(op_type)

        if spec.device_type is None:
            # Simple placement: prefer the first GPU when the kernel
            # supports it and the task has one.
            if "gpu" in supported and available.get("gpu", 0) > 0:
                spec.device_type, spec.device_index = "gpu", 0
            else:
                spec.device_type, spec.device_index = "cpu", 0
        else:
            spec.device_index = spec.device_index or 0
            problem = None
            if spec.device_type not in supported:
                problem = (
                    f"op type {op_type} has no {spec.device_type} kernel"
                )
            elif available.get(spec.device_type, 0) <= spec.device_index:
                problem = (
                    f"task has {available.get(spec.device_type, 0)} "
                    f"{spec.device_type} device(s); index {spec.device_index} "
                    f"does not exist"
                )
            if problem is not None:
                if not self.allow_soft:
                    raise InvalidArgumentError(
                        f"Cannot place op {name!r} on "
                        f"{spec.to_string()!r}: {problem} "
                        f"(allow_soft_placement=False)"
                    )
                # Soft placement: fall back to a supported device,
                # preferring the GPU when possible.
                if "gpu" in supported and available.get("gpu", 0) > 0:
                    spec.device_type, spec.device_index = "gpu", 0
                else:
                    spec.device_type, spec.device_index = "cpu", 0
        return canonical_device(spec.job, spec.task, spec.device_type, spec.device_index)
