"""Tensors, tensor shapes, and shape-only runtime values.

Graph edges carry :class:`Tensor` handles — symbolic references to the
``value_index``-th output of an :class:`~repro.core.graph.Operation`.
Static shapes may be *partially defined* (``None`` dims or unknown rank),
exactly like TensorFlow's shape system.

At run time an edge carries either a ``numpy.ndarray`` (concrete mode) or a
:class:`SymbolicValue` (shape-only mode, used for paper-scale benchmark
problems whose data would not fit in host memory).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro import dtypes
from repro.errors import InvalidArgumentError

__all__ = ["TensorShape", "Tensor", "SymbolicValue", "as_shape", "RuntimeValue"]


class TensorShape:
    """A possibly partially-known static shape.

    ``TensorShape(None)`` means unknown rank; a dimension of ``None`` means
    that dimension's size is unknown.
    """

    __slots__ = ("_dims",)

    def __init__(self, dims: Union[None, "TensorShape", Iterable[Optional[int]]] = None):
        if dims is None:
            self._dims: Optional[tuple[Optional[int], ...]] = None
        elif isinstance(dims, TensorShape):
            self._dims = dims._dims
        else:
            out = []
            for d in dims:
                if d is None:
                    out.append(None)
                else:
                    d = int(d)
                    if d < 0:
                        raise InvalidArgumentError(f"Negative dimension {d} in shape")
                    out.append(d)
            self._dims = tuple(out)

    # -- basic queries -------------------------------------------------------
    @property
    def rank(self) -> Optional[int]:
        return None if self._dims is None else len(self._dims)

    @property
    def dims(self) -> Optional[tuple[Optional[int], ...]]:
        return self._dims

    @property
    def is_fully_defined(self) -> bool:
        return self._dims is not None and all(d is not None for d in self._dims)

    def num_elements(self) -> Optional[int]:
        """Total element count, or None if not fully defined."""
        if not self.is_fully_defined:
            return None
        n = 1
        for d in self._dims:  # type: ignore[union-attr]
            n *= d
        return n

    def as_list(self) -> list[Optional[int]]:
        if self._dims is None:
            raise InvalidArgumentError("as_list() on a shape of unknown rank")
        return list(self._dims)

    def as_tuple(self) -> tuple[int, ...]:
        if not self.is_fully_defined:
            raise InvalidArgumentError(f"Shape {self} is not fully defined")
        return tuple(self._dims)  # type: ignore[arg-type]

    # -- compatibility algebra -------------------------------------------------
    def is_compatible_with(self, other: "TensorShape") -> bool:
        other = as_shape(other)
        if self._dims is None or other._dims is None:
            return True
        if len(self._dims) != len(other._dims):
            return False
        return all(
            a is None or b is None or a == b for a, b in zip(self._dims, other._dims)
        )

    def merge_with(self, other: "TensorShape") -> "TensorShape":
        """The most specific shape compatible with both, or raise."""
        other = as_shape(other)
        if self._dims is None:
            return other
        if other._dims is None:
            return self
        if len(self._dims) != len(other._dims):
            raise InvalidArgumentError(f"Shapes {self} and {other} have different ranks")
        merged = []
        for a, b in zip(self._dims, other._dims):
            if a is not None and b is not None and a != b:
                raise InvalidArgumentError(f"Shapes {self} and {other} are incompatible")
            merged.append(a if a is not None else b)
        return TensorShape(merged)

    def concatenate(self, other: "TensorShape") -> "TensorShape":
        other = as_shape(other)
        if self._dims is None or other._dims is None:
            return TensorShape(None)
        return TensorShape(self._dims + other._dims)

    def with_rank(self, rank: int) -> "TensorShape":
        if self._dims is None:
            return TensorShape([None] * rank)
        if len(self._dims) != rank:
            raise InvalidArgumentError(f"Shape {self} must have rank {rank}")
        return self

    # -- protocol -----------------------------------------------------------
    def __len__(self) -> int:
        if self._dims is None:
            raise InvalidArgumentError("len() on a shape of unknown rank")
        return len(self._dims)

    def __iter__(self):
        if self._dims is None:
            raise InvalidArgumentError("iter() on a shape of unknown rank")
        return iter(self._dims)

    def __getitem__(self, key):
        if self._dims is None:
            raise InvalidArgumentError("Indexing a shape of unknown rank")
        if isinstance(key, slice):
            return TensorShape(self._dims[key])
        return self._dims[key]

    def __eq__(self, other) -> bool:
        try:
            other = as_shape(other)
        except (InvalidArgumentError, TypeError):
            return NotImplemented
        return self._dims == other._dims

    def __hash__(self) -> int:
        return hash(self._dims)

    def __repr__(self) -> str:
        if self._dims is None:
            return "TensorShape(None)"
        return f"TensorShape({list(self._dims)})"

    def __str__(self) -> str:
        if self._dims is None:
            return "<unknown>"
        return "(" + ", ".join("?" if d is None else str(d) for d in self._dims) + ")"


def as_shape(value) -> TensorShape:
    """Coerce value (TensorShape, None, int sequence, np shape) to a shape."""
    if isinstance(value, TensorShape):
        return value
    if value is None:
        return TensorShape(None)
    if isinstance(value, (int, np.integer)):
        return TensorShape([int(value)])
    if isinstance(value, (list, tuple)):
        return TensorShape(value)
    raise InvalidArgumentError(f"Cannot convert {value!r} to a TensorShape")


class Tensor:
    """Symbolic handle to one output of an operation."""

    __slots__ = ("op", "value_index", "dtype", "_shape")

    def __init__(self, op, value_index: int, dtype: dtypes.DType, shape: TensorShape):
        self.op = op
        self.value_index = value_index
        self.dtype = dtypes.as_dtype(dtype)
        self._shape = as_shape(shape)

    @property
    def name(self) -> str:
        return f"{self.op.name}:{self.value_index}"

    @property
    def shape(self) -> TensorShape:
        return self._shape

    @property
    def graph(self):
        return self.op.graph

    @property
    def device(self) -> str:
        return self.op.device

    def set_shape(self, shape) -> None:
        """Refine the static shape with caller-supplied information."""
        self._shape = self._shape.merge_with(as_shape(shape))

    def consumers(self) -> list:
        """Operations that take this tensor as a data input."""
        return [
            op
            for op in self.graph.operations
            if any(inp is self for inp in op.inputs)
        ]

    # -- operator overloads (build graph ops lazily to avoid import cycles) --
    def _binary(self, other, fn_name: str, reverse: bool = False):
        from repro.core.ops import math_ops

        fn = getattr(math_ops, fn_name)
        if reverse:
            return fn(other, self)
        return fn(self, other)

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", reverse=True)

    def __sub__(self, other):
        return self._binary(other, "subtract")

    def __rsub__(self, other):
        return self._binary(other, "subtract", reverse=True)

    def __mul__(self, other):
        return self._binary(other, "multiply")

    def __rmul__(self, other):
        return self._binary(other, "multiply", reverse=True)

    def __truediv__(self, other):
        return self._binary(other, "divide")

    def __rtruediv__(self, other):
        return self._binary(other, "divide", reverse=True)

    def __matmul__(self, other):
        return self._binary(other, "matmul")

    def __neg__(self):
        from repro.core.ops import math_ops

        return math_ops.negative(self)

    def __repr__(self) -> str:
        return (
            f"<Tensor {self.name!r} shape={self._shape} dtype={self.dtype.name}>"
        )

    # Tensors are hashable identities, never implicitly compared by value.
    __hash__ = object.__hash__

    def __bool__(self):
        raise TypeError(
            "A symbolic Tensor has no truth value; use session.run() to get "
            "a concrete value first."
        )


class SymbolicValue:
    """Runtime stand-in for a tensor whose data is not materialized.

    Carries exactly the metadata the cost model needs: a fully-defined
    shape and a dtype. Arithmetic on SymbolicValues is meaningless; any
    attempt to read data is an error by construction (there is no data
    attribute at all).
    """

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: Sequence[int], dtype: dtypes.DType):
        self.shape = tuple(int(d) for d in shape)
        self.dtype = dtypes.as_dtype(dtype)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.size

    @classmethod
    def of(cls, value: "RuntimeValue") -> "SymbolicValue":
        """The spec of any runtime value (idempotent on SymbolicValue)."""
        if isinstance(value, SymbolicValue):
            return value
        arr = np.asarray(value)
        return cls(arr.shape, dtypes.as_dtype(arr.dtype))

    def __repr__(self) -> str:
        return f"SymbolicValue(shape={self.shape}, dtype={self.dtype.name})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, SymbolicValue):
            return NotImplemented
        return self.shape == other.shape and self.dtype == other.dtype

    def __hash__(self) -> int:
        return hash((self.shape, self.dtype))


# A runtime value flowing along a graph edge.
RuntimeValue = Union[np.ndarray, SymbolicValue]


def value_nbytes(value: RuntimeValue) -> int:
    """Wire size in bytes of a runtime value."""
    if isinstance(value, SymbolicValue):
        return value.nbytes
    return int(np.asarray(value).nbytes)
