"""Checkpointing: save and restore variable state.

The paper highlights checkpoint/restart as a TF feature valuable to HPC
users ("our distributed CG solver with checkpoint-restart capability only
consists of less than 300 lines of code"). :class:`Saver` snapshots
variables to a real file on the host filesystem using the wire format of
:mod:`repro.core.serialization` and restores them into any compatible
session — including across process boundaries.
"""

from __future__ import annotations

import io
import os
from typing import Optional, Sequence

from repro.core.graph import Graph, GraphKeys, get_default_graph
from repro.core.ops import array_ops, state_ops
from repro.core.serialization import (
    _read_bytes,
    _read_str,
    _write_bytes,
    _write_str,
    decode_varint,
    deserialize_tensor,
    encode_varint,
    serialize_tensor,
)
from repro.errors import DataLossError, InvalidArgumentError, NotFoundError

__all__ = [
    "Saver",
    "latest_checkpoint",
    "read_checkpoint",
    "checkpoint_step",
]

_MAGIC = b"RPCK"  # "repro checkpoint"
_VERSION = 1


class Saver:
    """Saves and restores a set of variables.

    Restore works by feeding saved values through per-variable placeholder
    + assign ops created lazily on first use (TF builds the same ops under
    the hood).
    """

    def __init__(self, var_list: Optional[Sequence] = None,
                 graph: Optional[Graph] = None):
        self._graph = graph or get_default_graph()
        if var_list is None:
            var_list = self._graph.get_collection(GraphKeys.GLOBAL_VARIABLES)
        if not var_list:
            raise InvalidArgumentError("Saver needs at least one variable")
        self._vars = {v.name: v for v in var_list}
        self._restore_ops: dict[str, tuple] = {}
        self._graph.add_to_collection(GraphKeys.SAVERS, self)

    # -- save -----------------------------------------------------------------
    def save(self, sess, path: str, global_step: Optional[int] = None) -> str:
        """Snapshot all variables; returns the checkpoint file path."""
        if global_step is not None:
            path = f"{path}-{global_step}"
        names = sorted(self._vars)
        values = sess.run([self._vars[n].value() for n in names])
        if len(names) == 1:  # single-element fetch lists return bare values
            values = [values]
        return self._write(path, names, values)

    def save_gen(self, sess, path: str, global_step: Optional[int] = None):
        """Coroutine form of :meth:`save` for use inside sim processes."""
        if global_step is not None:
            path = f"{path}-{global_step}"
        names = sorted(self._vars)
        values = yield from sess.run_gen(
            [self._vars[n].value() for n in names]
        )
        if len(names) == 1:  # single-element fetch lists return bare values
            values = [values]
        return self._write(path, names, values)

    def _write(self, path: str, names, values) -> str:
        stream = io.BytesIO()
        stream.write(_MAGIC)
        stream.write(encode_varint(_VERSION))
        stream.write(encode_varint(len(names)))
        for name, value in zip(names, values):
            _write_str(stream, name)
            _write_bytes(stream, serialize_tensor(value))
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        # Crash-atomic: write a temp file in the same directory, flush to
        # stable storage, then rename over the target. A crash mid-save
        # leaves either the previous complete checkpoint or a stray
        # ``.tmp`` (which latest_checkpoint ignores) — never a truncated
        # file under the real name.
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(stream.getvalue())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        return path

    # -- restore -----------------------------------------------------------------
    def _restore_op(self, var):
        if var.name not in self._restore_ops:
            with self._graph.as_default():
                feed = array_ops.placeholder(
                    var.dtype, shape=var.shape,
                    name=f"{var.name}/restore_feed", graph=self._graph,
                )
                assign = state_ops.assign(var, feed, name=f"{var.name}/restore")
            self._restore_ops[var.name] = (feed, assign.op)
        return self._restore_ops[var.name]

    def _restore_plan(self, path: str):
        entries = read_checkpoint(path)
        missing = set(self._vars) - set(entries)
        if missing:
            raise NotFoundError(
                f"Checkpoint {path!r} lacks variables: {sorted(missing)}"
            )
        ops = []
        feeds = {}
        for name, var in self._vars.items():
            feed, assign_op = self._restore_op(var)
            ops.append(assign_op)
            feeds[feed.name] = entries[name]
        return ops, feeds

    def restore(self, sess, path: str) -> None:
        """Load a checkpoint and assign every variable it contains."""
        ops, feeds = self._restore_plan(path)
        sess.run(ops, feed_dict=feeds)

    def restore_gen(self, sess, path: str):
        """Coroutine form of :meth:`restore` for use inside sim processes."""
        ops, feeds = self._restore_plan(path)
        yield from sess.run_gen(ops, feed_dict=feeds)


def read_checkpoint(path: str) -> dict:
    """Raw contents of a checkpoint file: variable name -> value.

    Truncated or corrupt files raise :class:`DataLossError` naming the
    path (never a bare struct/decode crash), so callers can fall back to
    an older checkpoint.
    """
    if not os.path.exists(path):
        raise NotFoundError(f"No checkpoint at {path!r}")
    with open(path, "rb") as handle:
        stream = io.BytesIO(handle.read())
    if stream.read(4) != _MAGIC:
        raise DataLossError(f"{path!r} is not a repro checkpoint")
    version = decode_varint(stream)
    if version != _VERSION:
        raise DataLossError(f"Unsupported checkpoint version {version}")
    entries = {}
    try:
        for _ in range(decode_varint(stream)):
            name = _read_str(stream)
            entries[name] = deserialize_tensor(_read_bytes(stream))
    except DataLossError as exc:
        raise DataLossError(f"Corrupt checkpoint {path!r}: {exc}") from exc
    except (ValueError, UnicodeDecodeError) as exc:
        # Garbage past a valid header: bad lengths, undecodable names.
        raise DataLossError(f"Corrupt checkpoint {path!r}: {exc}") from exc
    return entries


def checkpoint_step(path: str) -> int:
    """The global step encoded in a ``prefix-STEP`` checkpoint path."""
    step_text = os.path.basename(path).rpartition("-")[2]
    try:
        return int(step_text)
    except ValueError:
        raise InvalidArgumentError(
            f"Checkpoint path {path!r} carries no -STEP suffix"
        ) from None


def latest_checkpoint(directory: str, prefix: str = "ckpt",
                      validate: bool = True) -> Optional[str]:
    """Highest-step *readable* checkpoint under ``directory`` (or None).

    In-progress ``.tmp`` files are ignored, and (with ``validate``, the
    default) candidates that fail :func:`read_checkpoint` — truncated or
    bad-magic leftovers of a crash — are skipped in favour of the next
    older step, so a fault-recovery driver always restores from the
    newest *intact* snapshot.
    """
    if not os.path.isdir(directory):
        return None
    candidates: list[tuple[int, str]] = []
    for entry in os.listdir(directory):
        if not entry.startswith(prefix) or entry.endswith(".tmp"):
            continue
        step_text = entry.rpartition("-")[2]
        try:
            step = int(step_text)
        except ValueError:
            continue
        candidates.append((step, os.path.join(directory, entry)))
    for _step, path in sorted(candidates, reverse=True):
        if not validate:
            return path
        try:
            read_checkpoint(path)
            return path
        except (DataLossError, NotFoundError):
            continue
    return None
