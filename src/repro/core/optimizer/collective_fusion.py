"""Gradient-bucket fusion: merge small same-group allreduces into one.

Horovod's tensor-fusion argument, as a plan-time pass: reverse-mode
autodiff emits one ``CollectiveAllReduce`` per parameter tensor, and for
many-small-parameter models (per-layer weights + biases) the per-op
latency steps — ``2 (W-1)`` for a ring — dominate the actual bytes.
This pass rewrites each group of small, same-configuration allreduces
into a single collective over a concatenated buffer:

    per rank r:  flatten each fused op's rank-r input -> Concat
    one CollectiveAllReduce over the W concatenated buffers
    per fused op, per rank: Slice its block back out -> reshape

Summation stays elementwise in rank order starting from zeros, so fused
and unfused runs are **byte-identical**; only the simulated clock
changes (fewer latency steps, plus small concat/slice memcpy costs —
which is why only ops at or below ``collective_fusion_bytes`` fuse, and
buckets are capped at that size).

Ops group by ``(world, devices attr, protocol, algorithm, dtype,
per-rank placement hints)``; groups pack greedily in graph order into
buckets bounded by ``OptimizerOptions.collective_fusion_bytes``. Fused
subgraphs are built **into the graph** (bucketing needs real Concat /
Slice ops) and memoized on the graph object keyed by the bucket's ops
and resolved inputs, so rebuilding a plan for the same graph reuses the
existing fused ops instead of growing the graph without bound — the
graph version stabilizes after the first fused plan build, and the plan
cache behaves exactly as for any other graph mutation.

Unlike the other passes this one both removes ops from the working set
(the fused collectives) and adds new ones, so it finishes by restoring a
topological order over the rewritten subgraph.
"""

from __future__ import annotations

from typing import Optional

from repro.core.metadata import PassStats
from repro.errors import InternalError
from repro.core.ops import array_ops, collective_ops
from repro.core.optimizer.pipeline import Subgraph

__all__ = ["fuse_collectives"]

_MEMO_ATTR = "_collective_fusion_memo"


def _memo(graph) -> dict:
    store = getattr(graph, _MEMO_ATTR, None)
    if store is None:
        store = {}
        setattr(graph, _MEMO_ATTR, store)
    return store


def _rank_device_hints(sg: Subgraph, op) -> Optional[tuple]:
    """The per-rank device strings the lowering would colocate legs with.

    Mirrors ``partition.lower_collective``'s placement rule at the
    requested-device level: explicit ``devices`` attr first, else each
    rank input's producer's device string (for fed inputs, the
    placeholder's). Two ops only fuse when these hints agree — otherwise
    fusion would silently move a rank's traffic onto another device.
    """
    devices_attr = op.get_attr("devices")
    if devices_attr is not None:
        return tuple(devices_attr)
    hints = []
    for tensor in op.inputs:
        resolved = sg.resolve(tensor)
        hints.append(resolved.op.device)
    return tuple(hints)


def _collective_tainted(sg: Subgraph) -> set[str]:
    """Names of ops that transitively depend on any collective.

    Walked in ``sg.ops`` order (topological at pass entry), following
    resolved data inputs and effective control deps. Fusing a collective
    that sits downstream of another collective — even through plain math
    in between — would make the fused op consume (a slice of) itself:
    found by the differential fuzzer as seed 433, where the third of
    three chained allreduces fused with the first and plan building spun
    forever on the resulting cycle.
    """
    tainted: set[str] = set()

    def _taints(producer) -> bool:
        return (
            producer.type in collective_ops.COLLECTIVE_OP_TYPES
            or producer.name in tainted
        )

    for op in sg.ops:
        hit = False
        for tensor in op.inputs:
            if tensor.name in sg.feeds:
                continue
            resolved = sg.resolve(tensor)
            if resolved.name in sg.feeds:
                continue
            if _taints(resolved.op):
                hit = True
                break
        if not hit:
            hit = any(_taints(dep) for dep in sg.effective_control_deps(op))
        if hit:
            tainted.add(op.name)
    return tainted


def _fusible_signature(sg: Subgraph, op, max_bytes: int,
                       tainted: set[str]):
    """Group key for ``op``, or ``None`` when the op must stay unfused."""
    if op.type != "CollectiveAllReduce":
        return None
    if op.name in sg.fetch_op_names:
        return None  # fetched as an op: its lowering must survive
    if sg.effective_control_deps(op):
        return None  # ordered after other work: keep its own schedule slot
    if op.name in tainted:
        # Downstream of another collective (directly or through other
        # ops): bucketing two links of a chain would make the fused op
        # consume (a slice of) itself.
        return None
    for tensor in op.inputs:
        if not tensor.shape.is_fully_defined:
            return None
    nbytes = (
        op.inputs[0].shape.num_elements() * op.inputs[0].dtype.size
    )
    if nbytes > max_bytes:
        return None  # big buffers are bandwidth-bound: fusion buys nothing
    hints = _rank_device_hints(sg, op)
    return (
        op.get_attr("world"),
        op.get_attr("devices"),
        op.get_attr("protocol"),
        op.get_attr("algorithm") or "auto",
        op.inputs[0].dtype.name,
        hints,
    )


def _payload_nbytes(op) -> int:
    return op.inputs[0].shape.num_elements() * op.inputs[0].dtype.size


def _build_fused(sg: Subgraph, bucket: list, signature):
    """Create (or recall) the fused subgraph for one bucket.

    Returns ``(value substitutions, fused collective Operation, created
    ops)``. The built ops are memoized on the graph keyed by the
    bucket's op names and resolved input tensors, so repeated plan
    builds for the same graph are pure lookups — the graph stops growing
    (and its version stops moving) after the first fused build.
    """
    graph = sg.graph
    world, devices_attr, protocol, algorithm, _dtype, hints = signature
    resolved = [
        [sg.resolve(op.inputs[rank]) for rank in range(world)]
        for op in bucket
    ]
    key = (
        tuple(op.name for op in bucket),
        tuple(t.name for row in resolved for t in row),
    )
    memo = _memo(graph)
    if key in memo:
        return memo[key]

    first_new_op = len(graph.operations)
    sizes = [op.inputs[0].shape.num_elements() for op in bucket]
    with graph.name_scope("collective_fusion"):
        fused_ins = []
        for rank in range(world):
            with graph.device(hints[rank] or None):
                parts = []
                for j, op in enumerate(bucket):
                    x = resolved[j][rank]
                    if x.shape.rank != 1:
                        x = array_ops.reshape(x, [sizes[j]], name="flat")
                    parts.append(x)
                fused_ins.append(
                    array_ops.concat(parts, axis=0, name="bucket")
                )
        fused_outs = collective_ops.all_reduce(
            fused_ins,
            devices=devices_attr,
            protocol=protocol,
            algorithm=algorithm,
            name="fused_allreduce",
        )
        subs = {}
        offset = 0
        for j, op in enumerate(bucket):
            dims = op.inputs[0].shape.as_tuple()
            for rank in range(world):
                with graph.device(hints[rank] or None):
                    piece = array_ops.slice_(
                        fused_outs[rank], [offset], [sizes[j]],
                        name="unbucket",
                    )
                    if dims != (sizes[j],):
                        piece = array_ops.reshape(piece, list(dims),
                                                  name="unflat")
                    subs[op.outputs[rank].name] = piece
            offset += sizes[j]
    memo[key] = (subs, fused_outs[0].op, graph.operations[first_new_op:])
    return memo[key]


def _restore_topological_order(sg: Subgraph) -> None:
    """Re-sort ``sg.ops`` so every (resolved) producer precedes its
    consumers — the invariant ``build_plan`` iterates under, broken by
    inserting freshly-created ops whose node ids postdate their
    consumers."""
    index = {op.name: op for op in sg.ops}
    order: list = []
    state: dict[str, int] = {}  # 0 = on stack, 1 = done

    for root in sg.ops:
        if root.name in state:
            continue
        stack = [(root, False)]
        while stack:
            op, expanded = stack.pop()
            if state.get(op.name) == 1:
                continue
            if expanded:
                state[op.name] = 1
                order.append(op)
                continue
            if state.get(op.name) == 0:
                # Re-reached while still on the DFS stack: the rewrite
                # produced a cycle. Fail loudly — the old code revisited
                # the node and spun forever (fuzz seed 433).
                raise InternalError(
                    "collective fusion produced a cyclic subgraph at "
                    f"op {op.name!r}"
                )
            state[op.name] = 0
            stack.append((op, True))
            deps = []
            for tensor in op.inputs:
                if tensor.name in sg.feeds:
                    continue
                resolved = sg.resolve(tensor)
                if resolved.name in sg.feeds:
                    continue
                deps.append(resolved.op)
            deps.extend(sg.effective_control_deps(op))
            for dep in reversed(deps):
                if dep.name in index and state.get(dep.name) != 1:
                    stack.append((dep, False))
    sg.ops = order


def fuse_collectives(sg: Subgraph, max_bucket_bytes: int) -> PassStats:
    """Run the fusion rewrite over the working set; returns its stats.

    ``detail`` reports the collective-op count before and after, how
    many ops fused, and the bucket count — the numbers
    ``benchmarks/bench_collective_algos.py`` asserts on.
    """
    nodes_before = len(sg.ops)
    collectives_before = sum(
        1 for op in sg.ops if op.type in collective_ops.COLLECTIVE_OP_TYPES
    )
    tainted = _collective_tainted(sg)
    groups: dict = {}
    for op in sg.ops:
        signature = _fusible_signature(sg, op, max_bucket_bytes, tainted)
        if signature is not None:
            groups.setdefault(signature, []).append(op)

    fused_ops: set[str] = set()
    added_ops: list = []
    buckets_built = 0
    for signature, ops in groups.items():
        if len(ops) < 2:
            continue
        # Greedy packing in graph order, bounded by the bucket cap.
        buckets: list[list] = []
        current: list = []
        current_bytes = 0
        for op in ops:
            nbytes = _payload_nbytes(op)
            if current and current_bytes + nbytes > max_bucket_bytes:
                buckets.append(current)
                current, current_bytes = [], 0
            current.append(op)
            current_bytes += nbytes
        if current:
            buckets.append(current)
        for bucket in buckets:
            if len(bucket) < 2:
                continue  # a lone leftover stays unfused
            subs, fused_op, created = _build_fused(sg, bucket, signature)
            sg.value_subs.update(subs)
            added_ops.extend(created)
            for fused in bucket:
                fused_ops.add(fused.name)
                # Consumers ordered after a fused op now wait on the
                # fused collective instead.
                sg.control_subs[fused.name] = [fused_op]
            buckets_built += 1

    if fused_ops:
        known = {op.name for op in sg.ops}
        sg.ops = [op for op in sg.ops if op.name not in fused_ops] + [
            op for op in added_ops if op.name not in known
        ]
        _restore_topological_order(sg)

    collectives_after = sum(
        1 for op in sg.ops if op.type in collective_ops.COLLECTIVE_OP_TYPES
    )
    return PassStats(
        name="collective_fusion",
        nodes_before=nodes_before,
        nodes_after=len(sg.ops),
        detail={
            "collectives_before": collectives_before,
            "collectives_after": collectives_after,
            "ops_fused": len(fused_ops),
            "buckets": buckets_built,
        },
    )
