"""Common-subexpression elimination via structural hashing.

Two pure ops are merged when they agree on ``(type, resolved inputs,
attrs, requested device)`` and their static output specs match. Attribute
freezing is exact: constant payloads compare by dtype/shape/bytes, so two
separately-built but identical ``Const`` ops merge too (which in turn lets
the partitioner's per-tensor transfer cache coalesce their sends).
"""

from __future__ import annotations

import numpy as np

from repro.core.metadata import PassStats
from repro.core.optimizer.pipeline import PURE_OPS, Subgraph

__all__ = ["merge_common_subexpressions"]


def _freeze(value):
    """A hashable, exact fingerprint of one attribute value."""
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, np.generic):
        return ("npscalar", value.dtype.str, value.item())
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_freeze(v) for v in value))
    if isinstance(value, dict):
        return ("map", tuple(sorted((k, _freeze(v)) for k, v in value.items())))
    if isinstance(value, (str, int, float, bool, bytes, type(None))):
        return value
    return ("repr", repr(value))


def _freeze_attrs(attrs: dict):
    return tuple(sorted((k, _freeze(v)) for k, v in attrs.items()))


def merge_common_subexpressions(sg: Subgraph) -> PassStats:
    before = len(sg.ops)
    table: dict = {}
    kept: list = []
    merged = 0
    for op in sg.ops:  # topo order: the first structural twin is canonical
        if (
            op.type not in PURE_OPS
            or op.name in sg.fetch_op_names
            or sg.effective_control_deps(op)
        ):
            kept.append(op)
            continue
        input_keys = []
        for tensor in op.inputs:
            if tensor.name in sg.feeds:
                input_keys.append(("feed", tensor.name))
                continue
            resolved = sg.resolve(tensor)
            if resolved.name in sg.feeds:
                input_keys.append(("feed", resolved.name))
            else:
                input_keys.append(("tensor", resolved.name))
        key = (op.type, op.device, tuple(input_keys), _freeze_attrs(op.attrs))
        canonical = table.get(key)
        if canonical is None:
            table[key] = op
            kept.append(op)
            continue
        specs_match = len(canonical.outputs) == len(op.outputs) and all(
            mine.dtype == theirs.dtype and mine.shape.dims == theirs.shape.dims
            for mine, theirs in zip(op.outputs, canonical.outputs)
        )
        if not specs_match:
            kept.append(op)
            continue
        for mine, theirs in zip(op.outputs, canonical.outputs):
            sg.value_subs[mine.name] = theirs
        # Control consumers of the duplicate wait on the canonical op.
        sg.control_subs[op.name] = (canonical,)
        merged += 1
    sg.ops = kept
    return PassStats(
        name="common_subexpression",
        nodes_before=before,
        nodes_after=len(sg.ops),
        detail={"merged": merged},
    )
