"""Dead-op elimination: identity/NoOp chain collapsing and redundant
control-edge pruning (Grappler's dependency optimizer).

All rewrites here are value-preserving by construction: ``Identity`` is a
pass-through, a ``NoOp``'s completion is exactly the completion of its
control inputs, and a control edge implied by a data path adds no ordering
constraint the data path does not already enforce.
"""

from __future__ import annotations

from repro.core.metadata import PassStats
from repro.core.optimizer.pipeline import Subgraph

__all__ = [
    "collapse_identities",
    "splice_noops",
    "prune_redundant_control_deps",
]


def collapse_identities(sg: Subgraph) -> PassStats:
    """Forward each collapsible ``Identity`` to its input and drop the op.

    An identity survives when it is fetched as an op, carries control
    inputs (its completion orders other work), or is pinned to a device
    other than its producer's (the documented "pin a copy onto a device"
    idiom — collapsing it would silently delete a deliberate transfer).
    """
    before = len(sg.ops)
    kept: list = []
    collapsed = 0
    for op in sg.ops:
        if (
            op.type != "Identity"
            or op.name in sg.fetch_op_names
            or op.control_inputs
        ):
            kept.append(op)
            continue
        src = op.inputs[0]
        if op.device and op.device != src.op.device:
            kept.append(op)
            continue
        sg.value_subs[op.outputs[0].name] = src
        # Ops waiting on the identity via a control edge now wait on its
        # producer (or on nothing if the edge was cut by a feed).
        if src.name in sg.feeds:
            sg.control_subs[op.name] = ()
        else:
            sg.control_subs[op.name] = (src.op,)
        collapsed += 1
    sg.ops = kept
    return PassStats(
        name="identity_collapse",
        nodes_before=before,
        nodes_after=len(sg.ops),
        detail={"collapsed": collapsed},
    )


def splice_noops(sg: Subgraph) -> PassStats:
    """Splice out non-fetched ``NoOp`` barriers.

    ``group()`` builds trees of NoOps; any consumer waiting on an inner
    NoOp can equivalently wait on that NoOp's own control inputs. Fetched
    NoOps stay: the client awaits their completion by name.
    """
    before = len(sg.ops)
    kept: list = []
    spliced = 0
    for op in sg.ops:  # topo order: upstream splices resolve transitively
        if op.type != "NoOp" or op.name in sg.fetch_op_names or op.inputs:
            kept.append(op)
            continue
        sg.control_subs[op.name] = tuple(sg.effective_control_deps(op))
        spliced += 1
    sg.ops = kept
    return PassStats(
        name="noop_splice",
        nodes_before=before,
        nodes_after=len(sg.ops),
        detail={"spliced": spliced},
    )


def prune_redundant_control_deps(sg: Subgraph) -> PassStats:
    """Drop control edges already implied by another dependency path.

    Uses per-op ancestor bitsets over the surviving subgraph (runtime
    edges: resolved value inputs plus effective control deps; folded roots
    are sources). A control dep ``d`` of ``c`` is redundant when some other
    predecessor of ``c`` transitively depends on ``d``.
    """
    index = {op.name: i for i, op in enumerate(sg.ops)}
    reach: list[int] = [0] * len(sg.ops)
    dropped_edges = 0
    for op in sg.ops:
        i = index[op.name]
        preds: dict[str, int] = {}  # pred op name -> closure incl. itself
        if op.name not in sg.folded:
            for tensor in op.inputs:
                if tensor.name in sg.feeds:
                    continue
                resolved = sg.resolve(tensor)
                if resolved.name in sg.feeds:
                    continue
                name = resolved.op.name
                j = index.get(name)
                if j is not None:
                    preds[name] = reach[j] | (1 << j)
        ctrl = sg.effective_control_deps(op)
        for dep in ctrl:
            j = index.get(dep.name)
            if j is not None:
                preds[dep.name] = reach[j] | (1 << j)
        drops: set[str] = set()
        for dep in ctrl:
            j = index.get(dep.name)
            if j is None:
                continue
            bit = 1 << j
            for other, closure in preds.items():
                if other != dep.name and closure & bit:
                    drops.add(dep.name)
                    dropped_edges += 1
                    break
        if drops:
            existing = sg.control_drops.get(op.name, frozenset())
            sg.control_drops[op.name] = existing | frozenset(drops)
        mask = 0
        for closure in preds.values():
            mask |= closure
        reach[i] = mask
    return PassStats(
        name="dependency_pruning",
        nodes_before=len(sg.ops),
        nodes_after=len(sg.ops),
        detail={"control_edges_dropped": dropped_edges},
    )
