"""Plan-level kernel fusion: compile pure-op chains into single items.

This is the compiled executor lane ROADMAP calls "the raw-speed refactor
every future workload inherits", and the reproduction-scale analogue of
the subgraph-compilation path in the TensorFlow system paper. The fast
executor still pays per-item Python dispatch — ready-queue churn,
dependency-counter updates, kernel lookup, per-item source resolution —
for every one of the ~934 items in a fused SGD step. This pass runs over
the *lowered* plan (after transfer coalescing) and rewrites each maximal
same-device chain of pure ops into one ``kind="fused"`` item carrying a
:class:`CompiledChain`: per-member kernel, op, precomputed input wiring
and refcount decrements.

Correctness bar (enforced by tests and the fuzz matrix): fetch values
AND simulated time are byte-identical to the unfused plan. The compiled
runner replays each member's device hold, GIL hold and cost timeout at
exactly the timestamps the unfused dispatcher would produce. The fast
path's chain runner lives in :mod:`repro.core.executor` (it cooperates
with the dispatcher's ready deque); the legacy lane drives
:meth:`CompiledChain.run`. The executor's merged single-event path
additionally collapses a chain into one calendar event when the device
is provably uncontended for the whole span (see
``_Dispatcher._run_chain_merged``); its only observable narrowing is the
device pool's alloc/free *interleaving* against concurrent transport
completions — values and simulated time are still exact.

Chain legality — member ``c`` may extend the chain ending at ``t`` iff:

* ``c`` is a same-device ``"op"`` item whose kernel is registered pure
  (and not stateful/graph-only/blocking) and reads at least one of
  ``t``'s outputs;
* every *external* producer of ``c`` — value or control — is ``t`` itself
  or an ancestor of ``t``. By induction this puts every member's external
  inputs upstream of the chain *head*, so the fused item becomes ready at
  exactly the instant the head would have, and each member starts exactly
  when its unfused twin would (its only pending trigger is the previous
  member's completion).

With ``multi_consumer=True`` (the fast-path lane) a member's outputs may
also be observed *outside* the chain — by other items' values or control
deps, or by fetches. The executor's chain runner then publishes the
member's outputs under the member item itself and notifies the external
dependents at the member's completion instant, ordered exactly as the
unfused dispatcher's ready list would have been (externals that precede
the next member in plan order are dispatched before the chain reacquires
the device; the rest after). The legacy lane has no such notification
hook, so legacy plans are built with ``multi_consumer=False`` and only
fuse sole-consumer runs.

Everything else — sends/recvs, collectives, consts, variable ops, queue
ops, cross-device edges — breaks the chain by construction of the rules.

With ``OptimizerOptions.kernel_fusion_codegen`` the chain's uncontended
evaluator (:attr:`CompiledChain.compute`, used by the executor's merged
single-timeout path) is compiled to generated straight-line Python
source, ``exec``'d once at plan build: same kernels, with the member
constants (op types, double precision, input wiring) inlined instead of
interpreted per step.
"""

from __future__ import annotations

from typing import Optional

from repro.core.executor import _NO_DEVICE_HOLD, _record_member
from repro.core.kernels import registry as kernel_registry
from repro.core.metadata import PassStats
from repro.core.partition import FEED, Item

__all__ = ["CompiledChain", "fuse_kernel_chains"]

# Cost kinds the executing device charges simulated time for (mirrors
# executor._cost_seconds; "sync"/"none" costs take zero seconds).
_TIMED = frozenset(("compute", "memcpy", "io"))


class _MemberStep:
    """One op of a compiled chain, with its wiring precomputed.

    ``spec`` lists one token per kernel input: ``("x", k)`` reads the
    fused item's k-th external source (resolved once at chain start),
    ``("v", pos, idx)`` reads output ``idx`` of the member at ``pos``.
    ``consumes`` lists the ``(producer item, output idx)`` refcount
    decrements this member performs on completion — external producers
    are post-remap canonical items, intra-chain producers are the member
    items themselves (their outputs are registered under member uids).
    ``next_order`` is the plan-order position the *next* member held in
    the unfused plan (``None`` for the tail): the fast path's runner uses
    it to slot the chain continuation among the member's newly-ready
    external dependents exactly where the unfused ready list would have
    put it.
    """

    __slots__ = (
        "member", "op", "kernel", "spec", "consumes", "inline", "next_order"
    )

    def __init__(self, member, op, kernel, spec, consumes, inline,
                 next_order):
        self.member = member
        self.op = op
        self.kernel = kernel
        self.spec = spec
        self.consumes = consumes
        self.inline = inline
        self.next_order = next_order


class CompiledChain:
    """The executable form of one fused chain.

    ``compute(ext, ctx, device)`` evaluates every member kernel back to
    back with no simulator interaction and returns ``(vals, seconds,
    host_bytes)`` — the executor's merged path uses it when it can prove
    the device is uncontended for the chain's whole span.  ``run(state,
    item)`` is the legacy lane's generator, event-for-event identical to
    the members' unfused execution.  Both live on ``Item.compiled``,
    which the session's plan-cache reset leaves alone — a cached plan
    keeps its compiled chains.
    """

    __slots__ = ("steps", "n_outputs", "source", "run", "compute",
                 "mergeable", "__weakref__")

    def __init__(self, steps: tuple, n_outputs: int, codegen: bool = False):
        self.steps = steps
        self.n_outputs = n_outputs
        self.source: Optional[str] = None
        # Merged-path eligibility (no member may have external observers);
        # resolved lazily by the executor once the dependency graph exists.
        self.mergeable: Optional[bool] = None
        self.run = _make_runner(self)
        if codegen:
            self.compute, self.source = _compile_compute_source(self)
        else:
            self.compute = _make_compute(self)


def _make_runner(chain: CompiledChain):
    """The legacy lane's chain runner (a plain generator).

    Event-for-event identical to running each member as its own legacy
    process: per member — unconditional device claim through
    ``resource.request()`` (the legacy lane has no inline/try-acquire
    shortcut, even for zero-cost ops), kernel call while holding the
    slot, cost timeout under the GIL when host-bound, device release,
    then allocation/refcount bookkeeping at the member's completion
    instant.

    Between members the runner yields two already-succeeded events.
    Unfused, a member's completion reaches its successor through exactly
    two URGENT calendar entries — the producer's ``Process`` completion
    event, then the successor's ``AllOf`` — and any same-timestamp
    contender whose events sit between them in the calendar claims the
    device FIFO first.  The hops reproduce those two slots so fusion
    cannot reorder same-instant FIFO grants (found by the differential
    fuzzer: two independent ops swapping their grant order shifted
    simulated time by nanoseconds).

    Only sole-consumer chains run here (legacy plans are built with
    ``multi_consumer=False``): mid-chain members have no external
    observers, so no notification hook is needed.
    """
    steps = chain.steps
    last = len(steps) - 1

    def run(state, item):
        env = state.env
        device = state.device_obj(item.device)
        resource = device.resource
        task = state.task_runtime(item.device)
        ctx = state.kernel_ctx(item.device)
        faults = state.fault_injector
        trace = state.trace and state.metadata is not None
        resolve = state.resolve_source
        register = state.register_outputs
        consume = state.consume
        ext = [resolve(s) for s in item.sources]
        vals: list = [None] * len(steps)
        for pos, step in enumerate(steps):
            if pos:
                # The two URGENT hops a member-to-member handoff takes
                # unfused (producer Process completion, successor AllOf).
                hop = env.event()
                hop.succeed()
                yield hop
                hop = env.event()
                hop.succeed()
                yield hop
            if faults is not None and state.task_down(item.device):
                # The task died mid-chain: park forever, as the member's
                # unfused dispatch would. Peers' deadlines report it.
                state.park_stalled(item)
                yield env.event()
            start = env.now
            request = resource.request()
            yield request
            spec = step.spec
            inputs = [
                ext[t[1]] if t[0] == "x" else vals[t[1]][t[2]] for t in spec
            ]
            try:
                outputs, cost = step.kernel(step.op, inputs, ctx)
                if cost.kind in _TIMED:
                    seconds = device.time_for_cost(
                        cost, step.op.type, step.member.double_precision
                    )
                else:
                    seconds = 0.0
            except BaseException:
                resource.release(request)
                raise
            if seconds > 0.0:
                if cost.host_bytes > 0:
                    gil = task.gil
                    gil_req = gil.request()
                    yield gil_req
                    try:
                        yield env.timeout(seconds)
                    finally:
                        gil.release(gil_req)
                else:
                    yield env.timeout(seconds)
            resource.release(request)
            vals[pos] = outputs
            if pos == last:
                item.out_values = outputs
                register(item, outputs)
            else:
                step.member.out_values = outputs
                register(step.member, outputs)
            for ref in step.consumes:
                consume(ref[0], ref[1])
            if trace:
                _record_member(state, step.member, start, env.now, outputs)

    return run


def _make_compute(chain: CompiledChain):
    """The interpreted uncontended evaluator (default mode).

    Runs every member kernel back to back with zero simulator
    interaction; the executor's merged path charges the summed seconds as
    one timeout and performs the bookkeeping afterwards. Pure kernels
    make this safe to abandon: on any kernel error the caller falls back
    to the per-member path, which re-runs the kernels and surfaces the
    error at the exact simulated instant the unfused plan would.
    """
    steps = chain.steps

    def compute(ext, ctx, device):
        vals: list = [None] * len(steps)
        seconds: list = [0.0] * len(steps)
        host = 0
        for pos, step in enumerate(steps):
            inputs = [
                ext[t[1]] if t[0] == "x" else vals[t[1]][t[2]]
                for t in step.spec
            ]
            outputs, cost = step.kernel(step.op, inputs, ctx)
            vals[pos] = outputs
            if cost.kind in _TIMED:
                s = device.time_for_cost(
                    cost, step.op.type, step.member.double_precision
                )
                seconds[pos] = s
                if s > 0.0:
                    host += cost.host_bytes
        return vals, seconds, host

    return compute


# ---------------------------------------------------------------------------
# generated-source mode
# ---------------------------------------------------------------------------

def _compile_compute_source(chain: CompiledChain):
    """Unroll :func:`_make_compute` into generated straight-line source.

    The emitted function calls the same registry kernels in the same
    order — member constants (op type, double precision, input wiring)
    are inlined instead of read per step.
    """
    steps = chain.steps
    lines = [
        "def compute(ext, ctx, device):",
        "    host = 0",
    ]
    emit = lines.append
    n_ext = sum(1 for s in steps for t in s.spec if t[0] == "x")
    for k in range(n_ext):
        emit(f"    x{k} = ext[{k}]")
    for pos, step in enumerate(steps):
        emit(f"    # member {pos}: {step.op.type} {step.op.name!r}")
        args = ", ".join(
            f"x{t[1]}" if t[0] == "x" else f"v{t[1]}[{t[2]}]"
            for t in step.spec
        )
        emit(f"    v{pos}, cost = S[{pos}].kernel(S[{pos}].op, [{args}], ctx)")
        emit("    if cost.kind in TIMED:")
        emit(
            f"        s{pos} = device.time_for_cost(cost, {step.op.type!r}, "
            f"{step.member.double_precision!r})"
        )
        emit(f"        if s{pos} > 0.0:")
        emit("            host += cost.host_bytes")
        emit("    else:")
        emit(f"        s{pos} = 0.0")
    n = len(steps)
    vals = ", ".join(f"v{p}" for p in range(n))
    secs = ", ".join(f"s{p}" for p in range(n))
    emit(f"    return [{vals}], [{secs}], host")
    source = "\n".join(lines) + "\n"
    namespace = {"S": steps, "TIMED": _TIMED}
    exec(compile(source, "<kernel-fusion chain>", "exec"), namespace)
    return namespace["compute"], source


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------

def _member_eligible(item: Item) -> bool:
    """Whether an item may appear inside a chain at all."""
    if item.kind != "op":
        return False
    op_type = item.op.type
    return (
        kernel_registry.is_pure(op_type)
        and not kernel_registry.is_stateful(op_type)
        and not kernel_registry.is_graph_only(op_type)
        and kernel_registry.has_kernel(op_type)
        # No-hold ops skip the device FIFO entirely in the light lane; a
        # chain member always claims the device, so keep them out.
        and op_type not in _NO_DEVICE_HOLD
    )


def fuse_kernel_chains(items: list, fetch_sources: list, *,
                       codegen: bool = False, multi_consumer: bool = True):
    """Fuse maximal pure-op chains in a lowered plan.

    Runs after transfer coalescing, before consumer counts and the
    dependency graph are computed. Returns ``(items, fetch_sources,
    PassStats)`` with each chain replaced — at its head's position — by
    one ``kind="fused"`` item, and every reference to a chain *tail*
    (sources, control deps, fetches) rewired to the fused item.
    References to mid-chain members survive untouched: the runner
    publishes member outputs under the member items themselves
    (``multi_consumer=True`` only; the legacy lane fuses sole-consumer
    runs where no such references exist).
    """
    before = len(items)

    # Plan-order positions, used by the fast path's runner to interleave
    # mid-chain notifications exactly as the unfused ready list would.
    for order, it in enumerate(items):
        it.order = order

    # ---- who observes each item -------------------------------------------
    value_consumers: dict[int, list] = {}
    control_consumers: set[int] = set()
    fetched: set[int] = set()
    for it in items:
        for src in it.sources:
            if src[0] is not FEED:
                value_consumers.setdefault(src[0].uid, []).append(it)
        for dep in it.extra_deps:
            control_consumers.add(dep.uid)
    for src in fetch_sources:
        if src[0] is not FEED:
            fetched.add(src[0].uid)

    # ---- transitive-producer sets (memoized, iterative) ---------------------
    anc_cache: dict[int, frozenset] = {}

    def producers_of(it: Item) -> list:
        out = [src[0] for src in it.sources if src[0] is not FEED]
        out.extend(it.extra_deps)
        return out

    def ancestors(root: Item) -> frozenset:
        cached = anc_cache.get(root.uid)
        if cached is not None:
            return cached
        stack = [(root, iter(producers_of(root)))]
        on_stack = {root.uid}
        while stack:
            node, pending = stack[-1]
            advanced = False
            for prod in pending:
                if prod.uid in anc_cache or prod.uid in on_stack:
                    continue
                stack.append((prod, iter(producers_of(prod))))
                on_stack.add(prod.uid)
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_stack.discard(node.uid)
                acc: set[int] = set()
                for prod in producers_of(node):
                    acc.add(prod.uid)
                    acc.update(anc_cache.get(prod.uid, ()))
                anc_cache[node.uid] = frozenset(acc)
        return anc_cache[root.uid]

    # ---- chain formation (greedy forward, plan order) ----------------------
    claimed: set[int] = set()

    def extendable(tail: Item, cand: Item) -> bool:
        """Whether ``cand`` may legally follow ``tail`` in a chain."""
        if (
            cand.uid in claimed
            or not _member_eligible(cand)
            or cand.device != tail.device
        ):
            return False
        anc = None
        for producer in producers_of(cand):
            if producer is tail:
                continue
            if anc is None:
                anc = ancestors(tail)
            if producer.uid not in anc:
                return False
        return True

    def next_member(tail: Item) -> Optional[Item]:
        consumers = value_consumers.get(tail.uid)
        if not consumers:
            return None
        if not multi_consumer:
            # Legacy lane: the tail must be observed by nobody but the
            # candidate — single distinct value consumer, no control
            # consumers, not fetched, and the candidate must carry no
            # control deps of its own (there is no mid-chain hook to
            # publish from).
            if tail.uid in fetched or tail.uid in control_consumers:
                return None
            cand = consumers[0]
            for other in consumers[1:]:
                if other is not cand:
                    return None
            if cand.extra_deps:
                return None
            return cand if extendable(tail, cand) else None
        seen: set[int] = set()
        for cand in consumers:
            if cand.uid in seen:
                continue
            seen.add(cand.uid)
            if extendable(tail, cand):
                return cand
        return None

    chains: list[list[Item]] = []
    for it in items:
        if it.uid in claimed or not _member_eligible(it):
            continue
        chain = [it]
        claimed.add(it.uid)
        while True:
            nxt = next_member(chain[-1])
            if nxt is None:
                break
            chain.append(nxt)
            claimed.add(nxt.uid)
        if len(chain) >= 2:
            chains.append(chain)
        else:
            claimed.discard(it.uid)

    stats = PassStats(
        name="kernel_fusion",
        nodes_before=before,
        nodes_after=before,
        detail={"chains": 0, "fused_ops": 0, "longest_chain": 0,
                "codegen": codegen},
    )
    if not chains:
        return items, fetch_sources, stats

    # ---- fused-item shells + tail remap ------------------------------------
    uid_counter = max(it.uid for it in items) + 1
    remap: dict[int, Item] = {}  # tail uid -> fused item
    head_fused: dict[int, Item] = {}  # head uid -> fused item
    member_uids: set[int] = set()
    shells: list[tuple[Item, list[Item]]] = []
    for chain in chains:
        fused = Item(uid=uid_counter, kind="fused", device=chain[0].device)
        fused.order = chain[0].order  # the chain sits at its head's slot
        uid_counter += 1
        remap[chain[-1].uid] = fused
        head_fused[chain[0].uid] = fused
        member_uids.update(m.uid for m in chain)
        shells.append((fused, chain))

    def canonical(producer: Item) -> Item:
        return remap.get(producer.uid, producer)

    # ---- compile each chain ------------------------------------------------
    longest = 0
    fused_ops = 0
    for fused, chain in shells:
        pos_of = {m.uid: p for p, m in enumerate(chain)}
        sources: list = []
        steps: list[_MemberStep] = []
        for pos, member in enumerate(chain):
            spec: list = []
            consumes: list = []
            for src in member.sources:
                producer = src[0]
                if producer is not FEED and producer.uid in pos_of:
                    spec.append(("v", pos_of[producer.uid], src[1]))
                    consumes.append((producer, src[1]))
                elif producer is FEED:
                    spec.append(("x", len(sources)))
                    sources.append(src)
                else:
                    producer = canonical(producer)
                    spec.append(("x", len(sources)))
                    sources.append((producer, src[1]))
                    consumes.append((producer, src[1]))
            steps.append(_MemberStep(
                member=member,
                op=member.op,
                kernel=kernel_registry.get_kernel(member.op.type),
                spec=tuple(spec),
                consumes=tuple(consumes),
                inline=kernel_registry.is_inline(member.op.type),
                next_order=(
                    chain[pos + 1].order if pos + 1 < len(chain) else None
                ),
            ))
        # Mid-member refcounts: seed each member's counts with the next
        # member's source occurrences; build_plan's counting loop then adds
        # any external references (they resolve through the member object)
        # and fetches on top. Outputs nobody reads free the instant they
        # are produced — exactly the unfused dead-output behaviour.
        for pos, member in enumerate(chain[:-1]):
            counts = [0] * len(member.op.outputs)
            for src in chain[pos + 1].sources:
                if src[0] is member:
                    counts[src[1]] += 1
            member.consumer_counts = counts
        seen_deps: set[int] = set()
        deps: list = []
        for dep in chain[0].extra_deps:
            dep = canonical(dep)
            if dep.uid not in seen_deps:
                seen_deps.add(dep.uid)
                deps.append(dep)
        fused.sources = sources
        fused.extra_deps = deps
        fused.compiled = CompiledChain(
            tuple(steps), len(chain[-1].op.outputs), codegen=codegen
        )
        longest = max(longest, len(chain))
        fused_ops += len(chain)

    # ---- rebuild the item list, rewiring tail references --------------------
    out_items: list[Item] = []
    for it in items:
        fused = head_fused.get(it.uid)
        if fused is not None:
            out_items.append(fused)  # the chain sits at its head's slot
            continue
        if it.uid in member_uids:
            continue
        for i, src in enumerate(it.sources):
            if src[0] is not FEED and src[0].uid in remap:
                it.sources[i] = (remap[src[0].uid], src[1])
        if it.extra_deps:
            seen_deps = set()
            deps = []
            for dep in it.extra_deps:
                dep = canonical(dep)
                if dep.uid not in seen_deps:
                    seen_deps.add(dep.uid)
                    deps.append(dep)
            it.extra_deps = deps
        out_items.append(it)

    new_fetch = []
    for src in fetch_sources:
        if src[0] is not FEED and src[0].uid in remap:
            new_fetch.append((remap[src[0].uid], src[1]))
        else:
            new_fetch.append(src)

    stats.nodes_after = len(out_items)
    stats.detail.update(
        chains=len(chains), fused_ops=fused_ops, longest_chain=longest
    )
    return out_items, new_fetch, stats
