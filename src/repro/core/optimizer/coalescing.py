"""Cross-device transfer coalescing over built plan items.

The partitioner already dedupes transfers per (tensor name, destination
device). This pass goes further, after placement has resolved devices:

* constant items that materialize byte-identical values on the same device
  collapse into one (e.g. equal constants built under different partial
  device scopes, which CSE's requested-device key cannot merge);
* send/recv pairs left duplicated by that merge — same payload source,
  same destination device — collapse onto a single rendezvous key.

Both rewrites are value-preserving: consumers are rewired to the surviving
item, and fetch routing follows.
"""

from __future__ import annotations

import numpy as np

from repro.core.metadata import PassStats

__all__ = ["coalesce_transfers"]


def _const_fingerprint(item):
    if item.extra_deps:
        # A constant ordered after other work keeps its own schedule slot.
        return None
    parts = []
    for value in item.const_values:
        if not isinstance(value, np.ndarray):
            return None  # symbolic values: spec equality is not value equality
        parts.append((value.dtype.str, value.shape, value.tobytes()))
    return (item.device, tuple(parts))


def coalesce_transfers(items: list, fetch_sources: list):
    """Returns (surviving items, rewritten fetch_sources, PassStats)."""
    from repro.core.partition import FEED

    before = len(items)
    remap: dict[int, object] = {}  # dropped item uid -> surviving Item

    def canonical(item):
        while item.uid in remap:
            item = remap[item.uid]
        return item

    # -- 1. merge value-identical constants per device ------------------------
    merged_consts = 0
    by_value: dict = {}
    for item in items:
        if item.kind != "const":
            continue
        fp = _const_fingerprint(item)
        if fp is None:
            continue
        kept = by_value.get(fp)
        if kept is None:
            by_value[fp] = item
        else:
            remap[item.uid] = kept
            merged_consts += 1

    # -- 2. dedupe send/recv pairs sharing payload and destination ------------
    merged_transfers = 0
    if remap:
        recv_of_send: dict[str, object] = {}
        for item in items:
            if item.kind == "recv" and item.extra_deps:
                recv_of_send[item.key] = item
        by_route: dict = {}
        for item in items:
            if item.kind != "send" or item.uid in remap:
                continue
            if item.sources:
                producer, idx = item.sources[0]
                payload = ("data", canonical(producer).uid, idx)
            else:
                payload = ("ctrl", canonical(item.extra_deps[0]).uid)
            route = (payload, item.dst_device)
            kept = by_route.get(route)
            if kept is None:
                by_route[route] = item
                continue
            remap[item.uid] = kept
            dropped_recv = recv_of_send.get(item.key)
            kept_recv = recv_of_send.get(kept.key)
            if dropped_recv is not None and kept_recv is not None:
                remap[dropped_recv.uid] = kept_recv
            merged_transfers += 1

    if not remap:
        return items, fetch_sources, PassStats(
            name="transfer_coalescing", nodes_before=before, nodes_after=before
        )

    # -- 3. rewire every reference through the remap --------------------------
    survivors = [item for item in items if item.uid not in remap]
    for item in survivors:
        item.sources = [
            src if src[0] is FEED else (canonical(src[0]), src[1])
            for src in item.sources
        ]
        deps = []
        seen = set()
        for dep in item.extra_deps:
            dep = canonical(dep)
            if dep.uid not in seen and dep is not item:
                seen.add(dep.uid)
                deps.append(dep)
        item.extra_deps = deps
    fetch_sources = [
        src if src[0] is FEED else (canonical(src[0]), src[1])
        for src in fetch_sources
    ]
    return survivors, fetch_sources, PassStats(
        name="transfer_coalescing",
        nodes_before=before,
        nodes_after=len(survivors),
        detail={
            "constants_merged": merged_consts,
            "transfers_merged": merged_transfers,
        },
    )
