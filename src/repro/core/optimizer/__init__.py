"""Plan-time graph optimization — a Grappler-style pass pipeline.

Sessions run this pipeline over each pruned fetch closure before placement
(:func:`repro.core.partition.build_plan`):

* :mod:`~repro.core.optimizer.dead_code` — identity/NoOp chain collapsing,
  redundant control-edge pruning and the final unreachable-op sweep;
* :mod:`~repro.core.optimizer.cse` — common-subexpression elimination via
  structural hashing;
* :mod:`~repro.core.optimizer.constant_folding` — const-only subtrees are
  evaluated once through the kernel registry and memoized on the graph;
* :mod:`~repro.core.optimizer.collective_fusion` — opt-in Horovod-style
  gradient-bucket fusion: small same-group allreduces merge into one
  collective over a concatenated buffer (byte-identical values, fewer
  latency steps);
* :mod:`~repro.core.optimizer.coalescing` — post-placement merging of
  duplicate constants and ``_Send``/``_Recv`` pairs.

Every pass can be disabled individually through
``SessionConfig.optimizer`` (:class:`OptimizerOptions`), and the whole
pipeline through ``SessionConfig.graph_optimization``. Per-pass node
savings are reported in ``RunMetadata.pass_stats``.
"""

from repro.core.optimizer.pipeline import (
    PURE_OPS,
    OptimizationResult,
    OptimizerOptions,
    Subgraph,
    run_pipeline,
)

__all__ = [
    "PURE_OPS",
    "OptimizationResult",
    "OptimizerOptions",
    "Subgraph",
    "run_pipeline",
]
