"""The pass pipeline run over the pruned subgraph before placement.

This is the analog of TensorFlow's Grappler meta-optimizer (OSDI'16): after
a session prunes the graph to the fetch-reachable subset, the pipeline
rewrites that subset — collapsing identity/NoOp chains, merging common
subexpressions, folding constant subtrees and dropping redundant control
edges — and hands :func:`repro.core.partition.build_plan` a smaller,
equivalent set of ops to schedule.

Passes never mutate :class:`~repro.core.graph.Operation` objects (they are
shared, immutable graph state). Instead they edit a :class:`Subgraph`
working set: a surviving-op list plus substitution maps that the
partitioner consults while routing values and control edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.graph import Graph, Operation
from repro.core.kernels import registry as kernel_registry
from repro.core.metadata import PassStats
from repro.core.tensor import Tensor

__all__ = [
    "OptimizerOptions",
    "OptimizationResult",
    "Subgraph",
    "PURE_OPS",
    "run_pipeline",
]


class _RegistryPureOps:
    """Live view of the kernel registry's ``pure`` flag.

    Op types whose kernels are pure functions of their inputs and static
    attributes — no resource-manager state, no RNG lanes, no queues, no
    I/O, no simulation-time side effects — may be folded or merged. The
    set is declared at kernel registration (``register_kernel(...,
    pure=True)``) so the registry stays the single source of op metadata;
    this view keeps the historic ``op.type in PURE_OPS`` spelling working
    while resolving lazily (op modules register after this module loads).
    """

    def __contains__(self, op_type: object) -> bool:
        return isinstance(op_type, str) and kernel_registry.is_pure(op_type)

    def __iter__(self):
        return iter(sorted(kernel_registry.pure_op_types()))


PURE_OPS = _RegistryPureOps()


@dataclass
class OptimizerOptions:
    """Per-pass switches (threaded through ``SessionConfig.optimizer``)."""

    dead_code: bool = True  # identity collapse + NoOp splicing + sweep
    common_subexpression: bool = True
    constant_folding: bool = True
    dependency_pruning: bool = True  # drop control edges implied by data paths
    transfer_coalescing: bool = True  # plan-level send/recv dedup
    # Horovod-style gradient-bucket fusion: merge small same-group
    # CollectiveAllReduce ops into one schedule over a concatenated
    # buffer (byte-identical results, fewer latency steps). Opt-in: it
    # deliberately changes the communication schedule — and therefore
    # the simulated clock — which the default configuration never does.
    collective_fusion: bool = False
    # Per-op eligibility and bucket cap for the fusion pass: only
    # allreduces at or below this payload fuse, and a bucket's total
    # concatenated payload never exceeds it.
    collective_fusion_bytes: int = 1 << 20
    # Folding materializes values at plan time: cap the total static output
    # bytes of any folded op so huge Fill/MatMul results never materialize.
    max_folded_bytes: int = 1 << 20
    # Plan-level kernel fusion: compile maximal same-device chains of pure
    # ops into single "fused" plan items executed as one dispatch (closure
    # composition over the registry kernels). Byte-identical values and
    # byte-identical simulated time — the fused runner replays each
    # member's device hold, GIL hold and cost timeout exactly — so the
    # only effect is host-wall dispatch overhead. Opt-in while the lane
    # burns in; plan-cache-safe (the compiled chain is plan state).
    kernel_fusion: bool = False
    # Compile chains to generated straight-line source (exec'd once at
    # plan build) instead of the interpreted step loop. Same kernels, same
    # events — the generated code only unrolls the per-member dispatch.
    kernel_fusion_codegen: bool = False


@dataclass
class Subgraph:
    """The pipeline's working set over one pruned fetch closure."""

    graph: Graph
    ops: list[Operation]  # survivors, topological (node_id) order
    feeds: frozenset  # fed tensor names — edges already cut by pruning
    fetch_op_names: frozenset
    symbolic: bool  # session runs shape-only (affects folding only)
    # The fetched Tensor objects themselves; passes needing fetched *names*
    # must resolve through value_subs first (see constant_folding's roots).
    fetch_tensors: tuple = ()
    # tensor name -> replacement Tensor (identity collapse, CSE); chains
    # are allowed while passes run and flattened in the final result.
    value_subs: dict = field(default_factory=dict)
    # op name -> replacement control deps (NoOp splice, CSE merge target).
    control_subs: dict = field(default_factory=dict)
    # op name -> frozenset of control-dep op names dropped as redundant.
    control_drops: dict = field(default_factory=dict)
    # op name -> evaluated output values (constant-folded roots).
    folded: dict = field(default_factory=dict)

    def resolve(self, tensor: Tensor) -> Tensor:
        """Follow value substitutions to the canonical producing tensor."""
        while tensor.name in self.value_subs:
            tensor = self.value_subs[tensor.name]
        return tensor

    def effective_control_deps(self, op: Operation) -> list[Operation]:
        """Control inputs after splices, merges and redundancy drops."""
        dropped = self.control_drops.get(op.name, frozenset())
        out: list[Operation] = []
        seen: set[str] = set()
        stack = list(reversed(op.control_inputs))
        while stack:
            dep = stack.pop()
            if dep.name in dropped or dep.name in seen:
                continue
            replacement = self.control_subs.get(dep.name)
            if replacement is not None:
                seen.add(dep.name)
                stack.extend(reversed(replacement))
                continue
            seen.add(dep.name)
            out.append(dep)
        return out


@dataclass
class OptimizationResult:
    """Flattened rewrite maps consumed by ``build_plan``."""

    ops: list[Operation]
    value_subs: dict  # tensor name -> canonical Tensor (fully resolved)
    control_deps: dict  # op name -> tuple of effective control-dep Operations
    folded: dict  # op name -> list of evaluated output values
    stats: list[PassStats]
    transfer_coalescing: bool = True
    # Plan-level kernel-fusion switches, threaded through to build_plan
    # (the pass runs over lowered items, after coalescing).
    kernel_fusion: bool = False
    kernel_fusion_codegen: bool = False


def _sweep_unreachable(sg: Subgraph) -> PassStats:
    """Drop ops no longer reachable from the fetches via rewritten edges.

    This is dead-op elimination *beyond* fetch-reachability: the session's
    pruning already cut fetch-unreachable ops, but identity collapse, CSE
    and folding orphan further nodes (a folded root has no runtime inputs,
    so its constant subtree dies here).
    """
    before = len(sg.ops)
    index = {op.name: op for op in sg.ops}
    needed: set[str] = set()
    stack: list[Operation] = []
    for name in sg.fetch_op_names:
        if name in index:
            stack.append(index[name])
    for tensor in sg.fetch_tensors:
        if tensor.name in sg.feeds:
            continue
        resolved = sg.resolve(tensor)
        if resolved.name not in sg.feeds and resolved.op.name in index:
            stack.append(resolved.op)
    while stack:
        op = stack.pop()
        if op.name in needed or op.name not in index:
            continue
        needed.add(op.name)
        if op.name not in sg.folded:  # folded roots have no runtime inputs
            for tensor in op.inputs:
                if tensor.name in sg.feeds:
                    continue
                resolved = sg.resolve(tensor)
                if resolved.name in sg.feeds:
                    continue
                if resolved.op.name not in needed:
                    stack.append(resolved.op)
        for dep in sg.effective_control_deps(op):
            if dep.name not in needed:
                stack.append(dep)
    sg.ops = [op for op in sg.ops if op.name in needed]
    return PassStats(
        name="dead_code_sweep", nodes_before=before, nodes_after=len(sg.ops)
    )


def _rewrite_fingerprint(sg: Subgraph) -> tuple:
    """Sizes of every structure a pass can edit.

    Passes only ever *add* substitutions/drops/folds and *remove* ops, so
    equal sizes before and after a pass mean the pass rewrote nothing —
    and re-verifying an unchanged working set cannot find anything new.
    """
    return (
        len(sg.ops),
        len(sg.value_subs),
        len(sg.control_subs),
        len(sg.control_drops),
        len(sg.folded),
    )


def _verify_last_pass(sg: Subgraph, stats: list[PassStats],
                      verifier) -> None:
    """Re-verify the working set after the pass that produced ``stats[-1]``.

    Violations are attributed to that pass: the finding's ``opt_pass``
    field and the pass's ``detail["diagnostics"]`` both name it, so a
    buggy rewrite is caught at the exact pipeline stage that broke the
    graph rather than at plan-build (or worse, execution) time. The
    verifier is incremental (checks cost is proportional to what the
    pass rewrote, not to the working set); see
    :class:`repro.analysis.graph_verifier.SubgraphDeltaVerifier`.
    """
    pass_name = stats[-1].name
    report = verifier.verify_pass(sg, pass_name)
    stats[-1].detail["verified"] = report.ok
    if report.diagnostics:
        stats[-1].detail["diagnostics"] = [
            d.to_dict() for d in report.diagnostics
        ]
    report.raise_if_errors()


def run_pipeline(
    graph: Graph,
    ordered: Sequence[Operation],
    fetch_ops: Sequence[Operation],
    fetch_tensors: Sequence[Tensor],
    feeds: dict,
    options: OptimizerOptions,
    symbolic: bool = False,
    verify: bool = False,
) -> OptimizationResult:
    """Run all enabled passes over the pruned op set ``ordered``.

    With ``verify=True`` (``SessionConfig.verify_plans``), the working
    set is statically re-verified after every pass and a
    :class:`~repro.errors.VerificationError` naming the offending pass is
    raised the moment a rewrite breaks an invariant.
    """
    from repro.core.optimizer import constant_folding, cse, dead_code

    sg = Subgraph(
        graph=graph,
        ops=list(ordered),
        feeds=frozenset(feeds),
        fetch_op_names=frozenset(op.name for op in fetch_ops),
        fetch_tensors=tuple(fetch_tensors),
        symbolic=symbolic,
    )
    stats: list[PassStats] = []
    fingerprint = None
    verifier = None
    if verify:
        from repro.analysis.graph_verifier import SubgraphDeltaVerifier

        fingerprint = _rewrite_fingerprint(sg)
        verifier = SubgraphDeltaVerifier(sg)

    def ran(pass_stats: PassStats) -> None:
        nonlocal fingerprint
        stats.append(pass_stats)
        if verify:
            after = _rewrite_fingerprint(sg)
            if after == fingerprint:
                # The pass rewrote nothing; the previous verification
                # still holds.
                stats[-1].detail["verified"] = True
            else:
                fingerprint = after
                _verify_last_pass(sg, stats, verifier)

    if options.dead_code:
        ran(dead_code.collapse_identities(sg))
        ran(dead_code.splice_noops(sg))
    if options.common_subexpression:
        ran(cse.merge_common_subexpressions(sg))
    if options.constant_folding:
        ran(constant_folding.fold_constants(sg, options.max_folded_bytes))
    if options.collective_fusion:
        from repro.core.optimizer import collective_fusion

        ran(
            collective_fusion.fuse_collectives(
                sg, options.collective_fusion_bytes
            )
        )
    if options.dependency_pruning:
        ran(dead_code.prune_redundant_control_deps(sg))
    if options.dead_code:
        ran(_sweep_unreachable(sg))

    # Flatten substitution chains so the partitioner does one lookup.
    flat_subs = {
        name: sg.resolve(tensor) for name, tensor in sg.value_subs.items()
    }
    control_deps = {}
    for op in sg.ops:
        effective = sg.effective_control_deps(op)
        if [d.name for d in effective] != [d.name for d in op.control_inputs]:
            control_deps[op.name] = tuple(effective)
    return OptimizationResult(
        ops=sg.ops,
        value_subs=flat_subs,
        control_deps=control_deps,
        folded=dict(sg.folded),
        stats=stats,
        transfer_coalescing=options.transfer_coalescing,
        kernel_fusion=options.kernel_fusion,
        kernel_fusion_codegen=options.kernel_fusion_codegen,
    )
