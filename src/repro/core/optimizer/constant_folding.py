"""Constant folding: evaluate const-only pure subtrees once at plan time.

Foldable ops run through their registered kernels with a plain
:class:`~repro.core.kernels.registry.KernelContext` (honouring the
session's shape-only flag, so symbolic runs fold to the same symbolic
values execution would produce). Results are memoized on the graph object:
operations are immutable and never removed, so a folded value stays valid
for the graph's lifetime no matter how many fetch/feed combinations a
session issues.

Fold *roots* — folded ops still consumed by unfolded ops, awaited via a
control edge, or fetched — stay in the plan as zero-cost ``const`` items
(they materialize the value on their placed device, keep memory accounting
and trace visibility, and feed the normal send/recv routing). Interior
folded ops die in the dead-code sweep; the simulated time their kernels
would have charged disappears with them, which is why run comparisons
report simulated-time deltas alongside pass statistics.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.registry import KernelContext, get_kernel, has_kernel
from repro.core.metadata import PassStats
from repro.core.optimizer.pipeline import PURE_OPS, Subgraph

__all__ = ["fold_constants"]

_MEMO_ATTR = "_constant_fold_memo"
_FAILED = object()  # memoized "kernel raised / not evaluable" marker


def _memo(graph, symbolic: bool) -> dict:
    store = getattr(graph, _MEMO_ATTR, None)
    if store is None:
        store = {False: {}, True: {}}
        setattr(graph, _MEMO_ATTR, store)
    return store[bool(symbolic)]


def _static_nbytes(op) -> int:
    """Total static output bytes, or -1 if any shape is not fully defined."""
    total = 0
    for tensor in op.outputs:
        if not tensor.shape.is_fully_defined:
            return -1
        total += tensor.shape.num_elements() * tensor.dtype.size
    return total


def fold_constants(sg: Subgraph, max_folded_bytes: int) -> PassStats:
    foldable: dict[str, list] = {}  # op name -> evaluated outputs
    memo = _memo(sg.graph, sg.symbolic)
    ctx = KernelContext(symbolic=sg.symbolic)

    for op in sg.ops:
        if (
            op.type == "Const"
            or op.type not in PURE_OPS
            or not has_kernel(op.type)
            or op.name in sg.fetch_op_names
            or sg.effective_control_deps(op)
        ):
            continue
        nbytes = _static_nbytes(op)
        if nbytes < 0 or nbytes > max_folded_bytes:
            continue
        inputs = []
        for tensor in op.inputs:
            if tensor.name in sg.feeds:
                inputs = None
                break
            resolved = sg.resolve(tensor)
            if resolved.name in sg.feeds:
                inputs = None
                break
            producer = resolved.op
            if producer.type == "Const":
                inputs.append(producer.get_attr("value"))
            elif producer.name in foldable:
                inputs.append(foldable[producer.name][resolved.value_index])
            else:
                inputs = None
                break
        if inputs is None:
            continue
        cached = memo.get(op.name)
        if cached is _FAILED:
            continue
        if cached is None:
            try:
                result = get_kernel(op.type)(op, inputs, ctx)
                outputs, _cost = result
            except Exception:
                memo[op.name] = _FAILED
                continue
            for value in outputs:
                if isinstance(value, np.ndarray):
                    value.setflags(write=False)
            memo[op.name] = cached = list(outputs)
        foldable[op.name] = cached

    # Roots: folded ops the unfolded world still observes.
    value_consumers: dict[str, bool] = {}
    for op in sg.ops:
        is_folded = op.name in foldable
        for tensor in op.inputs:
            if tensor.name in sg.feeds:
                continue
            resolved = sg.resolve(tensor)
            if resolved.name in sg.feeds:
                continue
            if not is_folded and resolved.op.name in foldable:
                value_consumers[resolved.op.name] = True
        if not is_folded:
            for dep in sg.effective_control_deps(op):
                if dep.name in foldable:
                    value_consumers[dep.name] = True
    resolved_fetch_names = {
        sg.resolve(t).name for t in sg.fetch_tensors if t.name not in sg.feeds
    }
    roots = 0
    for name, outputs in foldable.items():
        op = sg.graph.get_operation_by_name(name)
        fetched = any(t.name in resolved_fetch_names for t in op.outputs)
        if value_consumers.get(name) or fetched:
            sg.folded[name] = outputs
            roots += 1
    return PassStats(
        name="constant_folding",
        nodes_before=len(sg.ops),
        nodes_after=len(sg.ops),  # removal happens in the dead-code sweep
        detail={"folded": len(foldable), "materialized_roots": roots},
    )
