"""tfdbg-lite: inspect tensor values flowing through a session.

Wrap any session; every ``run`` additionally fetches the outputs of ops
matching the watch patterns, records them in a dump, and applies tensor
filters (e.g. :func:`has_inf_or_nan`) — the workflow TF's ``tfdbg`` gives
on the command line, reduced to a library.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.session import Session
from repro.core.tensor import SymbolicValue, Tensor
from repro.errors import InternalError

__all__ = ["DebugSession", "DebugDump", "DumpEntry", "has_inf_or_nan"]


def has_inf_or_nan(tensor_name: str, value) -> bool:
    """The classic tfdbg filter: any non-finite element?"""
    if isinstance(value, SymbolicValue):
        return False
    arr = np.asarray(value)
    if not np.issubdtype(arr.dtype, np.floating) and not np.issubdtype(
        arr.dtype, np.complexfloating
    ):
        return False
    return bool(np.any(~np.isfinite(arr)))


@dataclass
class DumpEntry:
    """One recorded tensor value."""

    run_index: int
    tensor_name: str
    op_type: str
    value: object
    triggered_filters: list = field(default_factory=list)


class DebugDump:
    """All tensors recorded across a debug session's runs."""

    def __init__(self):
        self.entries: list[DumpEntry] = []

    def tensors(self, pattern: str = "*") -> list[DumpEntry]:
        return [e for e in self.entries if fnmatch.fnmatch(e.tensor_name, pattern)]

    def find_triggered(self, filter_name: str) -> list[DumpEntry]:
        return [e for e in self.entries if filter_name in e.triggered_filters]

    def __len__(self) -> int:
        return len(self.entries)


class DebugSession:
    """A session wrapper that watches tensors matching name patterns."""

    def __init__(
        self,
        session: Session,
        watch_patterns: Sequence[str] = ("*",),
        tensor_filters: Optional[dict[str, Callable]] = None,
        break_on_filter: bool = False,
    ):
        self._session = session
        self._patterns = list(watch_patterns)
        self._filters = dict(tensor_filters or {})
        self._break = break_on_filter
        self.dump = DebugDump()
        self._run_index = 0

    @property
    def graph(self):
        return self._session.graph

    @property
    def env(self):
        return self._session.env

    def add_tensor_filter(self, name: str, fn: Callable) -> None:
        self._filters[name] = fn

    def _watched_tensors(self, fetches) -> list[Tensor]:
        # Watch only ops that can feed the fetched subgraph to avoid
        # running unrelated (possibly blocking) ops.
        structure, fetch_ops, fetch_tensors, _slots = self._session._parse_fetches(
            fetches
        )
        needed: set[str] = set()
        stack = list(fetch_ops) + [t.op for t in fetch_tensors]
        while stack:
            op = stack.pop()
            if op.name in needed:
                continue
            needed.add(op.name)
            stack.extend(t.op for t in op.inputs)
            stack.extend(op.control_inputs)
        watched = []
        for op in self._session.graph.operations:
            if op.name not in needed:
                continue
            if not any(fnmatch.fnmatch(op.name, p) for p in self._patterns):
                continue
            watched.extend(op.outputs)
        return watched

    def run(self, fetches, feed_dict=None, **kwargs):
        watched = self._watched_tensors(fetches)
        combined = list(watched)
        single = not isinstance(fetches, (list, tuple))
        user_fetches = [fetches] if single else list(fetches)
        combined.extend(user_fetches)
        values = self._session.run(combined, feed_dict=feed_dict, **kwargs)
        if len(combined) == 1:  # single-element fetch lists return bare values
            values = [values]
        watch_values = values[: len(watched)]
        user_values = values[len(watched):]
        for tensor, value in zip(watched, watch_values):
            triggered = [
                name for name, fn in self._filters.items() if fn(tensor.name, value)
            ]
            self.dump.entries.append(
                DumpEntry(
                    run_index=self._run_index,
                    tensor_name=tensor.name,
                    op_type=tensor.op.type,
                    value=value,
                    triggered_filters=triggered,
                )
            )
            if triggered and self._break:
                raise InternalError(
                    f"Debugger filter(s) {triggered} triggered on "
                    f"{tensor.name} at run {self._run_index}"
                )
        self._run_index += 1
        return user_values[0] if single else user_values
