"""Reverse-mode automatic differentiation over dataflow graphs.

The original TensorFlow system paper (Abadi et al., OSDI'16) builds
training on *graph-level* differentiation: walking the graph backward
from a scalar loss and emitting, for each traversed op, a gradient
subgraph looked up in a per-op-type registry. This module is that
mechanism for ``repro``: :func:`gradients` returns symbolic gradient
tensors (ordinary graph ops — they run through the same optimizer,
partitioner, executor and simulator as the forward pass), and
:func:`apply_gradients` turns ``(gradient, variable)`` pairs into the
SGD update ``var -= lr * grad`` via the existing ``state_ops`` assigns.

What is differentiable
======================

Gradient functions are registered per op *type* with
:class:`RegisterGradient`. The registry covers the dense-algebra core —
``MatMul`` (all transpose combinations, matrix x vector included),
``Dot``, ``Add``/``Sub``/``Mul``/``Div``/``Maximum`` (with NumPy-style
broadcast reduction), ``Neg``, ``Square``, ``Sqrt``, ``Exp``,
``Sigmoid``, ``AddN``, ``Sum``/``Mean`` reductions, ``Identity``,
``Reshape``, ``Concat``/``Slice`` (layout ops — what the collective
fusion pass's bucketing emits) — enough for linear/logistic-style
regression losses. ``Placeholder``, ``Variable`` reads, ``Const`` and
``Fill`` are *leaves*: they have no inputs, so differentiation stops
there and the accumulated gradient is simply returned for any of them
listed in ``xs``.

What is **not** differentiable: everything else, deliberately including
the collective ops (``CollectiveAllReduce`` & co.). Collectives belong
*on* the backward path, not *inside* it — compute local gradients with
:func:`gradients`, then sum them across workers with
``repro.all_reduce`` (the Horovod pattern; see ``repro.apps.sgd``).
Asking :func:`gradients` to differentiate *through* an op with no
registered gradient raises a descriptive
:class:`~repro.errors.InvalidArgumentError`, never a bare ``KeyError``.

Gradients are graph construction: call :func:`gradients` while building
a graph or inside a ``@repro.function`` trace. There is no eager tape —
under eager execution, wrap the computation in a traced function first.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence


import numpy as np

from repro.core.graph import Graph, Operation
from repro.core.ops import array_ops, control_flow, math_ops, state_ops
from repro.core.tensor import Tensor

from repro.errors import InvalidArgumentError

__all__ = [
    "RegisterGradient",
    "apply_gradients",
    "get_gradient_function",
    "gradients",
    "minimize",
]

# op type -> grad_fn(op, grad) -> list of per-input gradient tensors
_GRADIENTS: dict[str, Callable] = {}


class RegisterGradient:
    """Decorator registering the gradient function for one op type.

    The decorated function receives ``(op, grad)`` — the forward
    :class:`~repro.core.graph.Operation` and the gradient flowing into
    its (single) output — and must return one gradient tensor per op
    input, in input order, using ``None`` for non-differentiable inputs.
    The returned tensors are ordinary graph ops built into ``op.graph``.

    Usage, exactly as in TF::

        @RegisterGradient("Square")
        def _square_grad(op, grad):
            x = op.inputs[0]
            return [math_ops.multiply(grad, 2.0 * x)]
    """

    def __init__(self, op_type: str):
        if not isinstance(op_type, str) or not op_type:
            raise InvalidArgumentError(
                f"RegisterGradient needs an op type string, got {op_type!r}"
            )
        if op_type in _GRADIENTS:
            raise InvalidArgumentError(
                f"Gradient for op type {op_type!r} is already registered"
            )
        self._op_type = op_type

    def __call__(self, fn: Callable) -> Callable:
        _GRADIENTS[self._op_type] = fn
        return fn


def get_gradient_function(op_type: str) -> Optional[Callable]:
    """The registered gradient function for ``op_type`` (or ``None``)."""
    return _GRADIENTS.get(op_type)


def registered_gradient_op_types() -> tuple[str, ...]:
    """Every op type with a gradient, sorted (drives coverage sweeps)."""
    return tuple(sorted(_GRADIENTS))


# ---------------------------------------------------------------------------
# the backward walk
# ---------------------------------------------------------------------------

def _as_tensor_list(values, what: str) -> list[Tensor]:
    if isinstance(values, (Tensor, state_ops.Variable)):
        values = [values]
    out = []
    for v in values:
        if isinstance(v, state_ops.Variable):
            v = v.value()
        if not isinstance(v, Tensor):
            raise InvalidArgumentError(
                f"{what} entries must be Tensors or Variables, got {v!r}"
            )
        out.append(v)
    if not out:
        raise InvalidArgumentError(f"{what} must be non-empty")
    return out


def _backward_reachable(ys: Sequence[Tensor]) -> set[Operation]:
    """Every op reachable from ``ys`` along data inputs."""
    reached: set[Operation] = set()
    stack = [y.op for y in ys]
    while stack:
        op = stack.pop()
        if op in reached:
            continue
        reached.add(op)
        stack.extend(t.op for t in op.inputs)
    return reached


def _ops_feeding_xs(
    reached: set[Operation], xs: Sequence[Tensor]
) -> set[Operation]:
    """The subset of ``reached`` with a data path from some ``x`` tensor
    *into* their inputs.

    Only these ops sit *between* ``xs`` and ``ys`` and therefore need a
    registered gradient; side branches (e.g. constant data feeding a
    loss) are never differentiated. Dependence starts at the ``x``
    tensors as *edges*, not at their producer ops: differentiation
    stops at an ``x`` (its accumulated gradient is the answer), so
    asking for the gradient with respect to, say, a collective's output
    works — the collective itself is never differentiated through.
    """
    x_tensors = set(xs)
    memo: dict[Operation, bool] = {}
    # Iterative post-order (graphs can be deeper than the Python
    # recursion limit): resolve an op only once all its inputs are.
    for root in reached:
        stack = [root]
        while stack:
            op = stack[-1]
            if op in memo:
                stack.pop()
                continue
            pending = [t.op for t in op.inputs if t.op not in memo]
            if pending:
                stack.extend(pending)
                continue
            memo[op] = any(
                t in x_tensors or memo[t.op] for t in op.inputs
            )
            stack.pop()
    return {op for op in reached if memo[op]}


def _default_grad_y(y: Tensor) -> Tensor:
    if not y.shape.is_fully_defined:
        raise InvalidArgumentError(
            f"gradients needs grad_ys for {y.name}: its static shape "
            f"{y.shape} is not fully defined"
        )
    ones = np.ones(y.shape.as_tuple(), dtype=y.dtype.np_dtype)
    return array_ops.constant(ones, name="grad_ys", graph=y.graph)


def _accumulate(graph: Graph, grads: list[Tensor]) -> Tensor:
    if len(grads) == 1:
        return grads[0]
    return math_ops.add_n(grads, name="grad_sum")


def gradients(
    ys,
    xs,
    grad_ys=None,
    name: str = "gradients",
) -> list[Tensor]:
    """Symbolic derivatives ``d(sum ys)/d(xs)``, as graph tensors.

    Walks the graph backward from ``ys``, emitting each traversed op's
    gradient subgraph via the :class:`RegisterGradient` registry and
    summing contributions where paths rejoin. The result is one tensor
    per ``x`` (``None`` where no differentiable path connects it to any
    ``y``) — plain graph ops that place, optimize, partition and
    simulate exactly like the forward pass.

    Args:
        ys: tensor or list of tensors to differentiate (typically one
            scalar loss).
        xs: tensor/``Variable`` or list thereof to differentiate *with
            respect to* — a ``Variable`` stands for its read tensor.
        grad_ys: optional incoming gradients, one per ``y`` (defaults to
            ones, which for a scalar loss is the usual seed of 1.0).
        name: name scope for the emitted backward ops.

    Raises:
        InvalidArgumentError: if a differentiable path runs through an
            op type with no registered gradient — including the
            collective ops, which are not differentiable (sum local
            gradients with ``repro.all_reduce`` *after* calling this;
            see the module docstring).
    """
    ys = _as_tensor_list(ys, "ys")
    xs = _as_tensor_list(xs, "xs")
    graph = ys[0].graph
    for t in (*ys, *xs):
        if t.graph is not graph:
            raise InvalidArgumentError(
                f"gradients got tensors from different graphs ({t.name})"
            )
    if grad_ys is None:
        grad_ys = [None] * len(ys)
    elif isinstance(grad_ys, (Tensor, np.ndarray, np.generic, int, float)):
        grad_ys = [grad_ys]
    else:
        try:
            grad_ys = list(grad_ys)
        except TypeError:
            raise InvalidArgumentError(
                f"grad_ys must be a tensor/array/number or a sequence of "
                f"them, got {grad_ys!r}"
            ) from None
    if len(grad_ys) != len(ys):
        raise InvalidArgumentError(
            f"gradients got {len(ys)} ys but {len(grad_ys)} grad_ys"
        )

    reached = _backward_reachable(ys)
    between = _ops_feeding_xs(reached, xs)
    x_tensors = set(xs)

    # tensor -> list of gradient contributions, summed lazily.
    accumulated: dict[Tensor, list[Tensor]] = {}
    with graph.name_scope(name):
        for y, gy in zip(ys, grad_ys):
            if gy is None:
                gy = _default_grad_y(y)
            elif not isinstance(gy, Tensor):
                gy = array_ops.constant(
                    np.asarray(gy, dtype=y.dtype.np_dtype),
                    name="grad_ys", graph=graph,
                )
            accumulated.setdefault(y, []).append(gy)

        # node_id order is a topological order (inputs are created before
        # their consumers), so descending node_id is a valid reverse walk.
        for op in sorted(between, key=lambda o: o.node_id, reverse=True):
            out_grads = [accumulated.get(t) for t in op.outputs]
            if not any(out_grads):
                continue  # y-independent op inside the between set
            if not op.inputs:
                continue  # leaf (Placeholder/Variable/Const): stop here
            grad_fn = _GRADIENTS.get(op.type)
            if grad_fn is None:
                raise InvalidArgumentError(
                    f"Operation {op.name!r} of type {op.type!r} is not "
                    f"differentiable: no gradient is registered for it. "
                    + (
                        "Collectives cannot be differentiated through - "
                        "compute local gradients first, then sum them "
                        "across ranks with repro.all_reduce (see "
                        "repro.core.gradients)."
                        if op.type.startswith("Collective")
                        else "Register one with "
                        "repro.core.gradients.RegisterGradient, or keep "
                        "this op off the differentiable path."
                    )
                )
            if len(op.outputs) != 1:
                raise InvalidArgumentError(
                    f"Cannot differentiate through multi-output op "
                    f"{op.name!r} ({op.type}); no registered gradient "
                    f"supports it"
                )
            grad = _accumulate(graph, out_grads[0])
            with graph.name_scope(f"{op.type}_grad"):
                in_grads = grad_fn(op, grad)
            if len(in_grads) != len(op.inputs):
                raise InvalidArgumentError(
                    f"Gradient for {op.type!r} returned {len(in_grads)} "
                    f"values for {len(op.inputs)} inputs"
                )
            for inp, g in zip(op.inputs, in_grads):
                if g is None:
                    continue
                if inp.op in between or inp in x_tensors:
                    accumulated.setdefault(inp, []).append(g)

        results: list[Optional[Tensor]] = []
        for x in xs:
            contributions = accumulated.get(x)
            results.append(
                _accumulate(graph, contributions) if contributions else None
            )
    return results


# ---------------------------------------------------------------------------
# SGD on top: apply_gradients / minimize
# ---------------------------------------------------------------------------

def _momentum_slot(var: state_ops.Variable, name: str) -> state_ops.Variable:
    """The per-variable velocity slot, created on the variable's device.

    Slot state rides the existing assign machinery: an ordinary zero-
    initialized ``Variable`` registered in the graph's global-variable
    collection, so ``global_variables_initializer`` (and the tracing
    frontend's automatic initializer handling) covers it like any other
    variable. Requires a fully-defined variable shape (there is no lazy
    slot allocation).
    """
    if not var.shape.is_fully_defined:
        raise InvalidArgumentError(
            f"momentum needs a fully-defined variable shape to build the "
            f"slot; {var.name} has shape {var.shape}"
        )
    g = var.graph
    init = array_ops.fill(
        var.shape.as_tuple(), 0, dtype=var.dtype,
        name=f"{name}/initial_value", graph=g,
    )
    return state_ops.Variable(init, name=name, graph=g)


def apply_gradients(
    grads_and_vars,
    learning_rate,
    momentum: float = 0.0,
    name: str = "SGD",
) -> list[Tensor]:
    """The SGD update ``var -= learning_rate * grad``, one assign per pair.

    Args:
        grads_and_vars: iterable of ``(gradient, Variable)`` pairs, as
            produced by zipping :func:`gradients` output with the
            variable list; pairs whose gradient is ``None`` are skipped.
        learning_rate: python scalar or scalar tensor.
        momentum: classic (Polyak) momentum coefficient. ``0.0`` (the
            default) is plain SGD. A positive value creates one velocity
            slot variable per applied pair — on the variable's device,
            through the ordinary assign machinery — and applies
            ``v = momentum * v + grad; var -= learning_rate * v``. Slot
            variables land in the graph's global-variable collection, so
            ``global_variables_initializer`` initializes them (the
            tracing frontend runs trace-created initializers
            automatically).
        name: name scope for the update ops.

    Returns:
        The freshly-assigned value tensors (``AssignSub`` outputs), one
        per applied pair — fetch any of them (or ``tf.group`` their
        ``.op``s into a single train op) to run the step. Each update is
        built under its variable's device, so the scale-and-subtract
        (and any slot update) executes where the weights live. Returning
        the updated values (instead of TF's bare op) lets a
        ``@repro.function`` body hand the post-update weights straight
        back to the caller.
    """
    pairs = list(grads_and_vars)
    if not pairs:
        raise InvalidArgumentError("apply_gradients got no (grad, var) pairs")
    if momentum < 0.0:
        raise InvalidArgumentError(f"momentum must be >= 0, got {momentum}")
    updates: list[Tensor] = []
    for grad, var in pairs:
        if not isinstance(var, state_ops.Variable):
            raise InvalidArgumentError(
                f"apply_gradients expects Variables, got {var!r}"
            )
        if grad is None:
            continue
        g = var.graph
        with g.name_scope(name), g.device(var.device or None):
            lr = learning_rate
            if not isinstance(lr, Tensor):
                lr = array_ops.constant(
                    np.asarray(lr, dtype=var.dtype.np_dtype),
                    name="learning_rate", graph=g,
                )
            if momentum:
                slot = _momentum_slot(var, name="momentum")
                m = array_ops.constant(
                    np.asarray(momentum, dtype=var.dtype.np_dtype),
                    name="momentum_coeff", graph=g,
                )
                # The Assign's output is the fresh velocity, so the
                # var update dataflow-depends on the slot write.
                velocity = state_ops.assign(
                    slot,
                    math_ops.add(
                        math_ops.multiply(m, slot.value(), name="decayed"),
                        grad, name="velocity",
                    ),
                )
            else:
                velocity = grad
            step = math_ops.multiply(lr, velocity, name="scaled_grad")
            updates.append(state_ops.assign_sub(var, step))
    if not updates:
        raise InvalidArgumentError(
            "apply_gradients: every gradient was None — nothing to apply"
        )
    return updates


def minimize(
    loss: Tensor,
    var_list: Sequence[state_ops.Variable],
    learning_rate,
    momentum: float = 0.0,
    name: str = "SGD",
):
    """One-call SGD: differentiate ``loss`` and apply the updates.

    Convenience wrapper chaining :func:`gradients` and
    :func:`apply_gradients` (with optional classic momentum); returns a
    single grouped train :class:`~repro.core.graph.Operation`. Raises if
    ``loss`` depends on none of ``var_list``.
    """
    var_list = list(var_list)
    grads = gradients([loss], var_list, name=f"{name}_gradients")
    updates = apply_gradients(zip(grads, var_list), learning_rate,
                              momentum=momentum, name=name)
    graph = loss.graph
    return control_flow.group(
        *[u.op for u in updates], name=f"{name}_train", graph=graph
    )


# ---------------------------------------------------------------------------
# gradient functions
# ---------------------------------------------------------------------------

def _static_dims(t: Tensor, what: str) -> tuple[int, ...]:
    if not t.shape.is_fully_defined:
        raise InvalidArgumentError(
            f"{what} gradient needs a fully-defined static shape, got "
            f"{t.shape} for {t.name}"
        )
    return t.shape.as_tuple()


def _sum_to_shape(grad: Tensor, target: Tensor) -> Tensor:
    """Reduce ``grad`` back to ``target``'s shape after broadcasting.

    The elementwise binaries broadcast NumPy-style, so the gradient
    flowing back may be larger than an input; summing over the
    broadcast axes restores the input's shape (static shapes only).
    """
    if grad.shape.is_fully_defined and grad.shape == target.shape:
        return grad
    gdims = _static_dims(grad, "broadcast")
    tdims = _static_dims(target, "broadcast")
    lead = len(gdims) - len(tdims)
    axes = list(range(lead)) + [
        lead + i for i, d in enumerate(tdims) if d == 1 and gdims[lead + i] != 1
    ]
    if not axes:
        return grad
    reduced = math_ops.reduce_sum(grad, axis=tuple(axes), keepdims=True,
                                  name="unbroadcast")
    return array_ops.reshape(reduced, tdims, name="unbroadcast_shape")


@RegisterGradient("Identity")
def _identity_grad(op, grad):
    return [grad]


@RegisterGradient("Reshape")
def _reshape_grad(op, grad):
    x = op.inputs[0]
    return [array_ops.reshape(grad, _static_dims(x, "Reshape"))]


@RegisterGradient("Add")
def _add_grad(op, grad):
    a, b = op.inputs
    return [_sum_to_shape(grad, a), _sum_to_shape(grad, b)]


@RegisterGradient("Sub")
def _sub_grad(op, grad):
    a, b = op.inputs
    return [
        _sum_to_shape(grad, a),
        _sum_to_shape(math_ops.negative(grad), b),
    ]


@RegisterGradient("Mul")
def _mul_grad(op, grad):
    a, b = op.inputs
    return [
        _sum_to_shape(math_ops.multiply(grad, b), a),
        _sum_to_shape(math_ops.multiply(grad, a), b),
    ]


@RegisterGradient("Div")
def _div_grad(op, grad):
    a, b = op.inputs
    z = op.outputs[0]  # a / b, reused: d/db = -grad * z / b
    return [
        _sum_to_shape(math_ops.divide(grad, b), a),
        _sum_to_shape(
            math_ops.negative(
                math_ops.divide(math_ops.multiply(grad, z), b)
            ),
            b,
        ),
    ]


@RegisterGradient("Neg")
def _neg_grad(op, grad):
    return [math_ops.negative(grad)]


@RegisterGradient("Square")
def _square_grad(op, grad):
    x = op.inputs[0]
    two = array_ops.constant(
        np.asarray(2, dtype=x.dtype.np_dtype), name="two", graph=x.graph
    )
    return [math_ops.multiply(grad, math_ops.multiply(two, x))]


@RegisterGradient("Sqrt")
def _sqrt_grad(op, grad):
    y = op.outputs[0]  # d sqrt(x)/dx = 1 / (2 sqrt(x))
    two = array_ops.constant(
        np.asarray(2, dtype=y.dtype.np_dtype), name="two", graph=y.graph
    )
    return [math_ops.divide(grad, math_ops.multiply(two, y))]


@RegisterGradient("Exp")
def _exp_grad(op, grad):
    y = op.outputs[0]  # d exp(x)/dx = exp(x), reused
    return [math_ops.multiply(grad, y)]


@RegisterGradient("Sigmoid")
def _sigmoid_grad(op, grad):
    y = op.outputs[0]  # d sigma(x)/dx = sigma (1 - sigma), reused
    one = array_ops.constant(
        np.asarray(1, dtype=y.dtype.np_dtype), name="one", graph=y.graph
    )
    return [
        math_ops.multiply(
            grad, math_ops.multiply(y, math_ops.subtract(one, y))
        )
    ]


@RegisterGradient("Maximum")
def _maximum_grad(op, grad):
    a, b = op.inputs
    # Subgradient: the larger input takes the gradient; exact ties route
    # to the first input (TF's GreaterEqual convention).
    mask = array_ops.cast(math_ops.greater_equal(a, b), a.dtype,
                          name="take_a")
    one = array_ops.constant(
        np.asarray(1, dtype=a.dtype.np_dtype), name="one", graph=a.graph
    )
    return [
        _sum_to_shape(math_ops.multiply(grad, mask), a),
        _sum_to_shape(
            math_ops.multiply(grad, math_ops.subtract(one, mask)), b
        ),
    ]


@RegisterGradient("AddN")
def _add_n_grad(op, grad):
    return [grad] * len(op.inputs)


@RegisterGradient("Dot")
def _dot_grad(op, grad):
    a, b = op.inputs  # grad is scalar; broadcast-multiply against each
    return [math_ops.multiply(grad, b), math_ops.multiply(grad, a)]


def _outer(u: Tensor, v: Tensor, name: str) -> Tensor:
    """Rank-1 outer product as a [m,1] @ [1,n] MatMul."""
    return math_ops.matmul(
        array_ops.expand_dims(u, 1), array_ops.expand_dims(v, 0), name=name
    )


@RegisterGradient("MatMul")
def _matmul_grad(op, grad):
    a, b = op.inputs
    ta = op.get_attr("transpose_a", False)
    tb = op.get_attr("transpose_b", False)
    if b.shape.rank == 1:
        # y = op(A) @ b with vector b; grad is rank 1.
        # dA = outer(grad, b) (transposed if A arrived transposed),
        # db = op(A)^T @ grad.
        grad_a = _outer(b, grad, "grad_a") if ta else _outer(grad, b, "grad_a")
        grad_b = math_ops.matmul(a, grad, transpose_a=not ta, name="grad_b")
        return [grad_a, grad_b]
    if not ta and not tb:
        grad_a = math_ops.matmul(grad, b, transpose_b=True, name="grad_a")
        grad_b = math_ops.matmul(a, grad, transpose_a=True, name="grad_b")
    elif not ta and tb:
        grad_a = math_ops.matmul(grad, b, name="grad_a")
        grad_b = math_ops.matmul(grad, a, transpose_a=True, name="grad_b")
    elif ta and not tb:
        grad_a = math_ops.matmul(b, grad, transpose_b=True, name="grad_a")
        grad_b = math_ops.matmul(a, grad, name="grad_b")
    else:
        grad_a = math_ops.matmul(b, grad, transpose_a=True, transpose_b=True,
                                 name="grad_a")
        grad_b = math_ops.matmul(grad, a, transpose_a=True, transpose_b=True,
                                 name="grad_b")
    return [grad_a, grad_b]


def _reduction_axes(op, dims: tuple[int, ...]) -> set[int]:
    axes = op.get_attr("axis")
    rank = len(dims)
    if axes is None:
        return set(range(rank))
    return {a % rank for a in axes}


def _broadcast_reduce_grad(op, grad) -> Tensor:
    """Spread a reduction's gradient back over the input's shape."""
    x = op.inputs[0]
    dims = _static_dims(x, op.type)
    norm = _reduction_axes(op, dims)
    if not op.get_attr("keepdims", False) and x.shape.rank:
        kept = tuple(1 if i in norm else d for i, d in enumerate(dims))
        grad = array_ops.reshape(grad, kept, name="keepdims")
    ones = array_ops.fill(dims, 1, dtype=x.dtype, name="spread",
                          graph=x.graph)
    return math_ops.multiply(grad, ones, name="spread_grad")


@RegisterGradient("Sum")
def _sum_grad(op, grad):
    return [_broadcast_reduce_grad(op, grad)]


@RegisterGradient("Mean")
def _mean_grad(op, grad):
    x = op.inputs[0]
    dims = _static_dims(x, "Mean")
    count = 1
    for i in _reduction_axes(op, dims):
        count *= dims[i]
    scale = array_ops.constant(
        np.asarray(1.0 / max(count, 1), dtype=x.dtype.np_dtype),
        name="inv_count", graph=x.graph,
    )
    return [math_ops.multiply(_broadcast_reduce_grad(op, grad), scale)]


@RegisterGradient("Concat")
def _concat_grad(op, grad):
    """Slice the incoming gradient back into per-input blocks."""
    axis = op.get_attr("axis")
    rank = len(_static_dims(grad, "Concat"))
    ax = axis % rank
    grads = []
    offset = 0
    for inp in op.inputs:
        dims = _static_dims(inp, "Concat")
        begin = [offset if i == ax else 0 for i in range(rank)]
        grads.append(
            array_ops.slice_(grad, begin, dims, name="unconcat")
        )
        offset += dims[ax]
    return grads


@RegisterGradient("Slice")
def _slice_grad(op, grad):
    """Pad the gradient back to the input's shape with zeros.

    Built from the existing layout ops: one ``Concat`` of zero blocks
    per dimension that was actually cut, innermost first — no dedicated
    Pad/scatter op needed.
    """
    x = op.inputs[0]
    begin = op.get_attr("begin")
    size = op.get_attr("size")
    dims = _static_dims(x, "Slice")
    out = grad
    # After processing dimension i (from the last to the first), ``out``
    # spans the full input extent on dims >= i and the slice extent on
    # dims < i; grown extents come from zero fills.
    for i in reversed(range(len(dims))):
        before = begin[i]
        after = dims[i] - begin[i] - size[i]
        if before == 0 and after == 0:
            continue
        grown = [
            dims[j] if j > i else (size[j] if j < i else None)
            for j in range(len(dims))
        ]
        parts = []
        if before:
            parts.append(array_ops.fill(
                [before if j == i else grown[j] for j in range(len(dims))],
                0, dtype=x.dtype, name="pad_before", graph=x.graph,
            ))
        parts.append(out)
        if after:
            parts.append(array_ops.fill(
                [after if j == i else grown[j] for j in range(len(dims))],
                0, dtype=x.dtype, name="pad_after", graph=x.graph,
            ))
        out = array_ops.concat(parts, axis=i, name="unslice")
    return [out]
