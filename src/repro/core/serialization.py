"""Wire serialization: a ProtoBuf-like TLV format for tensors and graphs.

TensorFlow serializes graphs and tensors as protocol buffers; messages are
capped at **2 GB**, a limit the paper hits when unrolling loops into one
graph ("computation graphs, which are represented as ProtoBuf, cannot
exceed two gigabyte in size"). This module reproduces the format family
(varints + length-delimited fields) and enforces the same limit in
:func:`serialize_graph`.
"""

from __future__ import annotations

import io
import struct
from typing import Any, BinaryIO


import numpy as np

from repro import dtypes
from repro.core.graph import Graph

from repro.core.tensor import SymbolicValue
from repro.errors import DataLossError, InvalidArgumentError, ResourceExhaustedError, UnimplementedError

__all__ = [
    "GRAPHDEF_LIMIT_BYTES",
    "encode_varint",
    "decode_varint",
    "serialize_tensor",
    "deserialize_tensor",
    "serialize_graph",
    "deserialize_graph",
    "graphdef_size",
]

# The ProtoBuf message size ceiling (2 GB).
GRAPHDEF_LIMIT_BYTES = 2**31


# ---------------------------------------------------------------------------
# varints
# ---------------------------------------------------------------------------

def encode_varint(value: int) -> bytes:
    """LEB128 unsigned varint (the protobuf wire primitive)."""
    if value < 0:
        raise InvalidArgumentError(f"varints encode non-negative ints, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(stream: BinaryIO) -> int:
    result = 0
    shift = 0
    while True:
        raw = stream.read(1)
        if not raw:
            raise DataLossError("Truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise DataLossError("Varint too long")


def _write_bytes(stream: BinaryIO, data: bytes) -> None:
    stream.write(encode_varint(len(data)))
    stream.write(data)


def _read_bytes(stream: BinaryIO) -> bytes:
    length = decode_varint(stream)
    data = stream.read(length)
    if len(data) != length:
        raise DataLossError(f"Truncated field: wanted {length} bytes, got {len(data)}")
    return data


def _write_str(stream: BinaryIO, text: str) -> None:
    _write_bytes(stream, text.encode("utf-8"))


def _read_str(stream: BinaryIO) -> str:
    return _read_bytes(stream).decode("utf-8")


# ---------------------------------------------------------------------------
# tensors
# ---------------------------------------------------------------------------

_TENSOR_CONCRETE = 1
_TENSOR_SYMBOLIC = 2


def serialize_tensor(value) -> bytes:
    """Serialize an ndarray or :class:`SymbolicValue` (spec-only)."""
    stream = io.BytesIO()
    if isinstance(value, SymbolicValue):
        stream.write(encode_varint(_TENSOR_SYMBOLIC))
        stream.write(encode_varint(value.dtype.enum))
        stream.write(encode_varint(len(value.shape)))
        for dim in value.shape:
            stream.write(encode_varint(dim))
        return stream.getvalue()
    # np.asarray (not ascontiguousarray: it promotes 0-d scalars to rank 1);
    # tobytes() below copies, so contiguity does not matter.
    arr = np.asarray(value)
    dtype = dtypes.as_dtype(arr.dtype)
    stream.write(encode_varint(_TENSOR_CONCRETE))
    stream.write(encode_varint(dtype.enum))
    stream.write(encode_varint(arr.ndim))
    for dim in arr.shape:
        stream.write(encode_varint(dim))
    _write_bytes(stream, arr.tobytes())
    return stream.getvalue()


def deserialize_tensor(data: bytes):
    stream = io.BytesIO(data)
    kind = decode_varint(stream)
    dtype = dtypes.from_enum(decode_varint(stream))
    rank = decode_varint(stream)
    shape = tuple(decode_varint(stream) for _ in range(rank))
    if kind == _TENSOR_SYMBOLIC:
        return SymbolicValue(shape, dtype)
    if kind != _TENSOR_CONCRETE:
        raise DataLossError(f"Unknown tensor kind tag {kind}")
    raw = _read_bytes(stream)
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.size
    if len(raw) != expected:
        raise DataLossError(
            f"Tensor payload has {len(raw)} bytes, expected {expected}"
        )
    return np.frombuffer(raw, dtype=dtype.np_dtype).reshape(shape).copy()


# ---------------------------------------------------------------------------
# attribute values
# ---------------------------------------------------------------------------

_ATTR_NONE = 0
_ATTR_INT = 1
_ATTR_FLOAT = 2
_ATTR_STR = 3
_ATTR_BOOL = 4
_ATTR_TUPLE = 5
_ATTR_TENSOR = 6


def _write_attr(stream: BinaryIO, value: Any) -> None:
    if value is None:
        stream.write(encode_varint(_ATTR_NONE))
    elif isinstance(value, bool):  # before int: bool is an int subtype
        stream.write(encode_varint(_ATTR_BOOL))
        stream.write(encode_varint(1 if value else 0))
    elif isinstance(value, (int, np.integer)):
        stream.write(encode_varint(_ATTR_INT))
        # zigzag for signed values
        zigzag = (int(value) << 1) ^ (int(value) >> 63)
        stream.write(encode_varint(zigzag & (2**64 - 1)))
    elif isinstance(value, (float, np.floating)):
        stream.write(encode_varint(_ATTR_FLOAT))
        stream.write(struct.pack("<d", float(value)))
    elif isinstance(value, str):
        stream.write(encode_varint(_ATTR_STR))
        _write_str(stream, value)
    elif isinstance(value, (tuple, list)):
        stream.write(encode_varint(_ATTR_TUPLE))
        stream.write(encode_varint(len(value)))
        for item in value:
            _write_attr(stream, item)
    elif isinstance(value, (np.ndarray, SymbolicValue)):
        stream.write(encode_varint(_ATTR_TENSOR))
        _write_bytes(stream, serialize_tensor(value))
    else:
        raise UnimplementedError(
            f"Attribute of type {type(value).__name__} is not serializable "
            f"(datasets and other python objects cannot cross the wire)"
        )


def _read_attr(stream: BinaryIO) -> Any:
    tag = decode_varint(stream)
    if tag == _ATTR_NONE:
        return None
    if tag == _ATTR_BOOL:
        return bool(decode_varint(stream))
    if tag == _ATTR_INT:
        zigzag = decode_varint(stream)
        return (zigzag >> 1) ^ -(zigzag & 1)
    if tag == _ATTR_FLOAT:
        return struct.unpack("<d", stream.read(8))[0]
    if tag == _ATTR_STR:
        return _read_str(stream)
    if tag == _ATTR_TUPLE:
        length = decode_varint(stream)
        return tuple(_read_attr(stream) for _ in range(length))
    if tag == _ATTR_TENSOR:
        return deserialize_tensor(_read_bytes(stream))
    raise DataLossError(f"Unknown attribute tag {tag}")


# ---------------------------------------------------------------------------
# graphs
# ---------------------------------------------------------------------------

_MAGIC = b"RPGD"  # "repro graph def"
_VERSION = 1


def serialize_graph(graph: Graph, limit: int = GRAPHDEF_LIMIT_BYTES) -> bytes:
    """Encode a graph; raises :class:`ResourceExhaustedError` past 2 GB."""
    stream = io.BytesIO()
    stream.write(_MAGIC)
    stream.write(encode_varint(_VERSION))
    stream.write(encode_varint(graph.seed if graph.seed is not None else 0))
    stream.write(encode_varint(1 if graph.seed is not None else 0))
    ops = graph.operations
    stream.write(encode_varint(len(ops)))
    for op in ops:
        _write_str(stream, op.name)
        _write_str(stream, op.type)
        _write_str(stream, op.device)
        stream.write(encode_varint(len(op.inputs)))
        for tensor in op.inputs:
            _write_str(stream, tensor.name)
        stream.write(encode_varint(len(op.control_inputs)))
        for dep in op.control_inputs:
            _write_str(stream, dep.name)
        stream.write(encode_varint(len(op.outputs)))
        for tensor in op.outputs:
            stream.write(encode_varint(tensor.dtype.enum))
            dims = tensor.shape.dims
            if dims is None:
                stream.write(encode_varint(0))
            else:
                stream.write(encode_varint(1))
                stream.write(encode_varint(len(dims)))
                for dim in dims:
                    stream.write(encode_varint(0 if dim is None else dim + 1))
        attrs = dict(op.attrs)
        stream.write(encode_varint(len(attrs)))
        for key in sorted(attrs):
            _write_str(stream, key)
            _write_attr(stream, attrs[key])
        if stream.tell() > limit:
            raise ResourceExhaustedError(
                f"GraphDef exceeds the {limit}-byte ProtoBuf limit "
                f"({stream.tell()} bytes and counting); split the graph or "
                f"keep state in variables instead of unrolling"
            )
    data = stream.getvalue()
    if len(data) > limit:
        raise ResourceExhaustedError(
            f"GraphDef is {len(data)} bytes, over the {limit}-byte limit"
        )
    return data


def graphdef_size(graph: Graph) -> int:
    """Size in bytes of the serialized graph (no limit enforcement)."""
    return len(serialize_graph(graph, limit=2**62))


def deserialize_graph(data: bytes) -> Graph:
    """Reconstruct a graph serialized by :func:`serialize_graph`."""
    stream = io.BytesIO(data)
    magic = stream.read(4)
    if magic != _MAGIC:
        raise DataLossError(f"Bad graph magic {magic!r}")
    version = decode_varint(stream)
    if version != _VERSION:
        raise DataLossError(f"Unsupported graph version {version}")
    seed_value = decode_varint(stream)
    has_seed = decode_varint(stream)
    graph = Graph(seed=seed_value if has_seed else None)
    num_ops = decode_varint(stream)
    for _ in range(num_ops):
        name = _read_str(stream)
        op_type = _read_str(stream)
        device = _read_str(stream)
        inputs = []
        for _ in range(decode_varint(stream)):
            inputs.append(graph.get_tensor_by_name(_read_str(stream)))
        control = []
        for _ in range(decode_varint(stream)):
            control.append(graph.get_operation_by_name(_read_str(stream)))
        output_specs = []
        for _ in range(decode_varint(stream)):
            dtype = dtypes.from_enum(decode_varint(stream))
            if decode_varint(stream) == 0:
                shape = None
            else:
                rank = decode_varint(stream)
                dims = []
                for _ in range(rank):
                    encoded = decode_varint(stream)
                    dims.append(None if encoded == 0 else encoded - 1)
                shape = dims
            output_specs.append((dtype, shape))
        attrs = {}
        for _ in range(decode_varint(stream)):
            key = _read_str(stream)
            attrs[key] = _read_attr(stream)
        with graph.control_dependencies(control):
            op = graph.create_op(
                op_type,
                inputs=inputs,
                output_specs=output_specs,
                attrs=attrs,
                name=name,
                device=device,
            )
        if op.name != name:
            raise DataLossError(
                f"Name collision while rebuilding graph: {name!r} became {op.name!r}"
            )
    return graph
