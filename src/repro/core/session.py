"""Sessions: the client interface that runs (sub)graphs on devices.

Mirrors TF 1.x usage::

    with Session() as sess:                  # local, simulated machine
        print(sess.run(c))

    server = Server(cluster, "worker", 0, machine=m)
    with Session(server.target, machine=m) as sess:   # distributed
        sess.run(init)

A session prunes and partitions the graph per run, schedules the plan on
the discrete-event simulator, and returns concrete NumPy values (or
:class:`~repro.core.tensor.SymbolicValue` specs in shape-only mode).
``run_gen`` is the coroutine flavour used when many tasks run
concurrently inside one simulation (the paper's worker/reducer pattern).
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional, Union


import numpy as np

from repro.core.executor import ExecutionState, launch_plan
from repro.core.graph import Graph, Operation, get_default_graph
from repro.core.metadata import RunMetadata, RunOptions
from repro.core.optimizer import OptimizerOptions
from repro.core.partition import FEED, _normalize_feeds, build_plan
from repro.core.placement import Placer, canonical_device
from repro.core.tensor import Tensor
from repro.errors import InvalidArgumentError

from repro.runtime.clusterspec import ClusterSpec
from repro.runtime.rendezvous import Rendezvous
from repro.runtime.retry import RetryPolicy
from repro.runtime.server import Server, ServerConfig
from repro.simnet.events import Environment
from repro.simnet.gpu import GENERIC_GPU, GPUModel
from repro.simnet.machines import Machine, localhost
from repro.simnet.transports import protocol_latency

__all__ = ["Session", "SessionConfig", "admin_rpc_time"]

_RUN_IDS = itertools.count(1)

# Bound on cached (fetches, feeds, graph-version) plans per session: long-
# lived sessions issuing many distinct fetch combinations evict LRU-first
# instead of growing without limit.
_PLAN_CACHE_CAPACITY = 64


def admin_rpc_time(remote_tasks: bool) -> float:
    """Administrative RPC overhead charged at the start of every run.

    One client -> master gRPC round trip, plus parallel triggers to the
    remote participating tasks when any exist (gRPC always carries this
    control traffic, whatever the data protocol). Exposed so timing
    tests and benchmarks subtract the same overhead the session charges.
    """
    grpc_rtt = 2 * protocol_latency("grpc")
    return grpc_rtt * (2 if remote_tasks else 1)


@dataclass
class SessionConfig:
    """Session behaviour switches (subset of ``tf.ConfigProto``)."""

    allow_soft_placement: bool = True
    log_device_placement: bool = False
    # Shape-only execution: tensors carry metadata, kernels charge costs
    # but never materialize data. Used for paper-scale benchmark points.
    shape_only: bool = False
    # Local-session hardware (ignored when a target is given).
    num_gpus: int = 1
    gpu_model: GPUModel = GENERIC_GPU
    # Plan-time graph optimization (Grappler-style pass pipeline). The
    # master switch disables every pass; individual passes toggle through
    # ``optimizer`` (see :class:`repro.core.optimizer.OptimizerOptions`).
    graph_optimization: bool = True
    optimizer: OptimizerOptions = field(default_factory=OptimizerOptions)
    # Dependency-counting executor: dispatch zero-cost, non-blocking items
    # inline instead of spawning a simulator process per plan item.
    executor_fast_path: bool = True
    # Per-run deadline in *simulated* milliseconds (None = no run-level
    # watchdog; collectives still carry their default join timeout). When
    # a run cannot finish in time — a crashed worker, a dropped rank —
    # it fails with DeadlineExceededError naming the stuck items instead
    # of hanging the simulation. Mirrors tf.ConfigProto's
    # operation_timeout_in_ms.
    operation_timeout_ms: Optional[float] = None
    # Retry policy for transient transport faults (UnavailableError on
    # send edges): None = fail fast, or a
    # :class:`repro.runtime.retry.RetryPolicy` for capped exponential
    # backoff over simulated time.
    retry_policy: Optional["RetryPolicy"] = None
    # Static verification (:mod:`repro.analysis`): re-verify the graph
    # after every optimizer pass and verify the lowered plan before it
    # enters the plan cache, raising VerificationError on violations.
    # Defaults on when the REPRO_VERIFY_PLANS environment variable is a
    # non-empty value other than "0" (how the test suite and the CI
    # verifier lane switch it on fleet-wide).
    verify_plans: bool = field(
        default_factory=lambda: os.environ.get("REPRO_VERIFY_PLANS", "0")
        not in ("", "0")
    )


@dataclass
class _PreparedRun:
    """One run's plan plus everything needed to execute and reassemble it.

    Produced by :meth:`Session._prepare_run` (thread-safe, simulator not
    involved); consumed by :meth:`Session._execute_gen`. ``released``
    tracks whether the plan's in-flight registration has been dropped,
    so release is idempotent between the coroutine's own ``finally`` and
    the :meth:`Session.run` backstop.
    """

    plan: Any
    feeds: dict
    structure: tuple
    slots: list
    fetch_tensors: list
    task_runtimes: dict
    run_id: int
    plan_cache_hit: bool
    cache_hits: int
    cache_misses: int
    released: bool = False


class Session:
    """Encapsulates one client's connection to a (simulated) runtime."""

    def __init__(
        self,
        target: Union[str, Server, None] = None,
        graph: Optional[Graph] = None,
        config: Optional[SessionConfig] = None,
        machine: Optional[Machine] = None,
        env: Optional[Environment] = None,
    ):
        self.graph = graph or get_default_graph()
        self.config = config or SessionConfig()
        self._closed = False
        if isinstance(target, Server):
            self._master = target
            self.machine = target.machine
        elif target:
            if machine is None:
                raise InvalidArgumentError(
                    "A string target needs machine= to resolve addresses "
                    "(the simulation has no real network)"
                )
            address = target.split("://", 1)[-1]
            self._master = machine.resolve(address)
            self.machine = machine
        else:
            # Local session: build a private single-node machine unless the
            # caller supplies one.
            self.machine = machine or localhost(
                env or Environment(),
                num_gpus=self.config.num_gpus,
                gpu_model=self.config.gpu_model,
            )
            address = "localhost:0"
            if address in self.machine.address_table:
                self._master = self.machine.resolve(address)
            else:
                self._master = Server(
                    ClusterSpec({"localhost": [address]}),
                    job_name="localhost",
                    task_index=0,
                    machine=self.machine,
                    protocol="grpc+verbs",
                    config=ServerConfig(
                        allow_soft_placement=self.config.allow_soft_placement
                    ),
                    node_name="localhost",
                )
        self.env: Environment = self.machine.env
        # Plan cache: repeated runs of the same fetches/feeds on an
        # unchanged graph reuse the pruned/optimized/partitioned plan (TF
        # caches the same way: graphs are registered with workers once).
        # LRU-bounded to _PLAN_CACHE_CAPACITY entries.
        self._plan_cache: OrderedDict = OrderedDict()
        self._plans_in_flight: set[int] = set()
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        self._plan_cache_evictions = 0
        # Concurrency: many OS threads may call run() on one shared
        # Session (the serving front-door does exactly this). Two locks
        # with distinct jobs:
        #   _cache_lock guards every _plan_cache / counter /
        #     _plans_in_flight access, and makes lookup + in-flight
        #     registration one atomic step — without it two threads can
        #     grab the *same* plan object and race on its items' runtime
        #     state, or interleave OrderedDict mutations mid-eviction.
        #   _run_lock serializes driving the discrete-event simulator
        #     (env.process + env.run); the DES calendar is a plain heap
        #     with no internal synchronization. Plan preparation (fetch
        #     parsing, feed validation, build_plan) happens *outside*
        #     _run_lock so threads overlap the expensive Python work.
        self._cache_lock = threading.Lock()
        self._run_lock = threading.RLock()

    # -- context management ----------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._closed = True

    # -- cluster resolution ------------------------------------------------------
    @property
    def master(self) -> Server:
        return self._master

    def _task_runtimes(self) -> dict:
        runtimes = {}
        spec = self._master.cluster_spec
        for job in spec.jobs:
            for index in spec.task_indices(job):
                address = spec.task_address(job, index)
                server = self.machine.resolve(address)
                runtimes[(job, index)] = server.runtime
        return runtimes

    def _placer(self, task_runtimes: dict) -> Placer:
        task_devices = {
            key: runtime.device_counts() for key, runtime in task_runtimes.items()
        }
        return Placer(
            task_devices,
            default_job=self._master.job_name,
            default_task=self._master.task_index,
            allow_soft_placement=self.config.allow_soft_placement,
        )

    # -- fetch handling -----------------------------------------------------------
    def _parse_fetches(self, fetches):
        """Flatten fetches.

        Returns ``(structure, fetch_ops, fetch_tensors, slots)`` where
        ``slots`` classifies every leaf *once* — ``("op",)`` or
        ``("tensor", index into fetch_tensors)`` — and is the single
        source of truth for reassembling run results (no second,
        divergent classification pass).
        """
        fetch_ops: list[Operation] = []
        fetch_tensors: list[Tensor] = []
        slots: list = []  # per leaf: ("op",) or ("tensor", index)

        def add_leaf(item):
            from repro.core.ops.state_ops import Variable

            if isinstance(item, Variable):
                item = item.value()
            if isinstance(item, str):
                if ":" in item:
                    item = self.graph.get_tensor_by_name(item)
                else:
                    item = self.graph.get_operation_by_name(item)
            if isinstance(item, Tensor):
                if item.graph is not self.graph:
                    raise InvalidArgumentError(
                        f"Fetch {item.name} is from a different graph"
                    )
                slots.append(("tensor", len(fetch_tensors)))
                fetch_tensors.append(item)
            elif isinstance(item, Operation):
                slots.append(("op",))
                fetch_ops.append(item)
            else:
                raise InvalidArgumentError(
                    f"Cannot fetch object of type {type(item).__name__}: {item!r}"
                )

        if isinstance(fetches, (list, tuple)) and len(fetches) != 1:
            for item in fetches:
                add_leaf(item)
            structure = ("list", len(fetches))
        else:
            # A single-element list behaves identically to a bare fetch
            # (callers unpacking generated fetch lists of any length get
            # uniform semantics either way).
            if isinstance(fetches, (list, tuple)):
                (fetches,) = fetches
            add_leaf(fetches)
            structure = ("single",)
        return structure, fetch_ops, fetch_tensors, slots

    # -- running -------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            # A RuntimeError (not a graph-validation error): the failure is
            # in how the Session object is being used, and raising here —
            # before any simulator process spins up — keeps the traceback
            # pointed at the offending run() call.
            raise RuntimeError(
                "Attempted to use a closed Session. Sessions cannot run "
                "after close(); create a new Session instead."
            )

    def run(self, fetches, feed_dict=None, options: Optional[RunOptions] = None,
            run_metadata: Optional[RunMetadata] = None):
        """Execute the graph; blocks until the simulated run completes.

        Thread-safe: concurrent callers prepare their plans (fetch
        parsing, feed validation, plan build / cache lookup) in parallel
        and serialize only on driving the simulator.
        """
        self._check_open()
        prepared = self._prepare_run(fetches, feed_dict)
        try:
            with self._run_lock:
                proc = self.env.process(
                    self._execute_gen(prepared, options, run_metadata),
                    name="session.run",
                )
                return self.env.run(until=proc)
        finally:
            # Normally the coroutine's own finally releases; this backstop
            # covers a drive aborted before the coroutine ever started.
            self._release_prepared(prepared)

    def run_gen(self, fetches, feed_dict=None, options: Optional[RunOptions] = None,
                run_metadata: Optional[RunMetadata] = None):
        """Coroutine version of :meth:`run` for concurrent sim processes."""
        # Non-generator wrapper so misuse (closed session) raises at the
        # call site rather than when the simulator first advances the
        # returned coroutine. The plan is prepared (and registered in
        # flight) eagerly, for the same reason.
        self._check_open()
        prepared = self._prepare_run(fetches, feed_dict)
        return self._execute_gen(prepared, options, run_metadata)

    def _prepare_run(self, fetches, feed_dict) -> "_PreparedRun":
        """Everything before the simulator: parse, validate, get a plan.

        Cache lookup and in-flight registration are a single atomic step
        under ``_cache_lock``: a concurrent same-key caller either finds
        the plan already in flight (and builds its own duplicate, exactly
        as the DES-level concurrency path always has) or takes ownership
        itself — two callers can never share one plan's item state.
        ``build_plan`` for a miss runs outside the lock.
        """
        run_id = next(_RUN_IDS)
        structure, fetch_ops, fetch_tensors, slots = self._parse_fetches(fetches)
        feeds = self._validate_feeds(_normalize_feeds(feed_dict))
        task_runtimes = self._task_runtimes()
        placer = self._placer(task_runtimes)
        client_device = canonical_device(
            self._master.job_name, self._master.task_index, "cpu", 0
        )
        cache_key = (
            tuple(op.name for op in fetch_ops),
            tuple(t.name for t in fetch_tensors),
            tuple(sorted(feeds)),
            self.graph.version,
        )
        with self._cache_lock:
            plan = self._plan_cache.get(cache_key)
            if plan is not None:
                self._plan_cache.move_to_end(cache_key)
            plan_cache_hit = (
                plan is not None and id(plan) not in self._plans_in_flight
            )
            if plan_cache_hit:
                self._plan_cache_hits += 1
                self._plans_in_flight.add(id(plan))
                # Reset per-run state; rendezvous keys may repeat because
                # every run gets a fresh Rendezvous instance.
                for item in plan.items:
                    item.process = None
                    item.out_values = None
                    if item.kind == "fused":
                        # Chain members publish outputs under their own
                        # items; clear those too. The compiled closures
                        # themselves persist across cached runs.
                        for step in item.compiled.steps:
                            step.member.out_values = None
            else:
                self._plan_cache_misses += 1
                plan = None
            hits, misses = self._plan_cache_hits, self._plan_cache_misses
        if plan is None:
            plan = build_plan(
                self.graph,
                fetch_ops,
                fetch_tensors,
                feeds,
                placer,
                client_device,
                run_id,
                optimizer_options=(
                    self.config.optimizer
                    if self.config.graph_optimization
                    else None
                ),
                symbolic=self.config.shape_only,
                verify=self.config.verify_plans,
                fast_path=self.config.executor_fast_path,
            )
            with self._cache_lock:
                self._plan_cache[cache_key] = plan
                self._plan_cache.move_to_end(cache_key)
                self._plans_in_flight.add(id(plan))
                self._evict_plans()
        return _PreparedRun(
            plan=plan,
            feeds=feeds,
            structure=structure,
            slots=slots,
            fetch_tensors=fetch_tensors,
            task_runtimes=task_runtimes,
            run_id=run_id,
            plan_cache_hit=plan_cache_hit,
            cache_hits=hits,
            cache_misses=misses,
        )

    def _release_prepared(self, prepared: "_PreparedRun") -> None:
        """Drop a prepared run's in-flight registration (idempotent)."""
        with self._cache_lock:
            if not prepared.released:
                prepared.released = True
                self._plans_in_flight.discard(id(prepared.plan))

    def _execute_gen(self, prepared: "_PreparedRun", options, run_metadata):
        env = self.env
        plan = prepared.plan
        feeds = prepared.feeds
        run_id = prepared.run_id
        structure = prepared.structure
        fetch_tensors = prepared.fetch_tensors
        slots = prepared.slots
        task_runtimes = prepared.task_runtimes
        plan_cache_hit = prepared.plan_cache_hit
        if self.config.log_device_placement:
            for name, device in sorted(plan.placements.items()):
                print(f"{name}: ({device})")

        trace = bool(options and options.trace_level >= RunOptions.FULL_TRACE)
        metadata = run_metadata if run_metadata is not None else RunMetadata()
        metadata.start_time = env.now
        metadata.pass_stats = list(plan.pass_stats)
        metadata.plan_items = len(plan.items)
        metadata.collective_algorithms = dict(plan.collective_algorithms)
        metadata.compiled_items = plan.compiled_items
        metadata.fused_op_count = plan.fused_op_count
        metadata.plan_cache_hit = plan_cache_hit
        metadata.plan_cache_hits = prepared.cache_hits
        metadata.plan_cache_misses = prepared.cache_misses
        metadata.plan_verified = plan.verified
        metadata.verifier_warnings = len(plan.verifier_diagnostics)

        remote_tasks = [
            key
            for key in plan.devices_by_task
            if key != (self._master.job_name, self._master.task_index)
        ]
        yield env.timeout(admin_rpc_time(bool(remote_tasks)))

        rendezvous = Rendezvous(env)
        state = ExecutionState(
            env=env,
            plan=plan,
            rendezvous=rendezvous,
            task_runtimes=task_runtimes,
            protocol=self._master.data_protocol,
            feeds=feeds,
            symbolic=self.config.shape_only,
            run_id=run_id,
            graph_seed=self.graph.seed,
            metadata=metadata,
            trace=trace,
            fast_path=self.config.executor_fast_path,
            deadline_seconds=(
                self.config.operation_timeout_ms / 1000.0
                if self.config.operation_timeout_ms is not None
                else None
            ),
            retry_policy=self.config.retry_policy,
            fault_injector=getattr(self.machine, "faults", None),
        )
        try:
            done = launch_plan(state)
            if done is not None:
                yield done
            values = []
            for source in plan.fetch_sources:
                if source[0] is FEED:
                    values.append(np.asarray(feeds[source[1]]))
                else:
                    item, idx = source
                    values.append(item.out_values[idx])
        finally:
            state.release_all()
            self._release_prepared(prepared)
        metadata.end_time = env.now

        if structure[0] == "single":
            if fetch_tensors:
                return values[0]
            return None
        # Preserve the original list order of mixed op/tensor fetches,
        # reusing the slot classification from _parse_fetches.
        return [
            values[slot[1]] if slot[0] == "tensor" else None for slot in slots
        ]

    def _validate_feeds(self, feeds: dict) -> dict:
        """Check every feed against the fed tensor's dtype and shape, and
        coerce concrete values to the right NumPy dtype."""
        from repro.core.tensor import SymbolicValue, TensorShape

        validated = {}
        for name, value in feeds.items():
            tensor = self.graph.get_tensor_by_name(name)
            if isinstance(value, SymbolicValue):
                if value.dtype != tensor.dtype:
                    raise InvalidArgumentError(
                        f"Feed for {name} has dtype {value.dtype.name}; "
                        f"tensor expects {tensor.dtype.name}"
                    )
                fed_shape = TensorShape(value.shape)
            else:
                value = np.asarray(value, dtype=tensor.dtype.np_dtype)
                fed_shape = TensorShape(value.shape)
            if not tensor.shape.is_compatible_with(fed_shape):
                raise InvalidArgumentError(
                    f"Feed for {name} has shape {fed_shape}; tensor expects "
                    f"{tensor.shape}"
                )
            validated[name] = value
        return validated

    def _evict_plans(self) -> None:
        """Bound the plan cache, never dropping a plan a run still holds.

        Caller must hold ``_cache_lock``. Eviction is LRU-first but skips
        plans registered in ``_plans_in_flight``: a concurrent ``run_gen``
        holds item-level runtime state on the plan's items, and dropping
        its cache entry mid-run would let a same-key rerun rebuild (and
        re-cache) a duplicate plan while the first still executes. If
        every cached plan is mid-run the cache temporarily overflows
        instead.
        """
        if len(self._plan_cache) <= _PLAN_CACHE_CAPACITY:
            return
        evictable = [
            key
            for key, plan in self._plan_cache.items()
            if id(plan) not in self._plans_in_flight
        ]
        excess = len(self._plan_cache) - _PLAN_CACHE_CAPACITY
        for key in evictable[:excess]:
            del self._plan_cache[key]
            self._plan_cache_evictions += 1

    def plan_cache_info(self) -> dict:
        """Cached-plan statistics.

        ``items`` counts schedulable plan items across every cached plan —
        the metric the optimizer benchmarks track across PRs. ``hits`` /
        ``misses`` are cumulative per-run lookup counters (also surfaced
        per run through :class:`~repro.core.metadata.RunMetadata`).
        ``capacity`` is the LRU bound and ``evictions`` counts entries
        dropped to honour it — together they make serving-layer cache
        pressure (many live signatures churning a bounded cache)
        observable.
        """
        with self._cache_lock:
            return {
                "plans": len(self._plan_cache),
                "items": sum(len(p.items) for p in self._plan_cache.values()),
                "hits": self._plan_cache_hits,
                "misses": self._plan_cache_misses,
                "capacity": _PLAN_CACHE_CAPACITY,
                "evictions": self._plan_cache_evictions,
            }

    def list_devices(self) -> list[str]:
        names = []
        for runtime in self._task_runtimes().values():
            names.extend(runtime.device_names)
        return sorted(names)

    def __repr__(self) -> str:
        return f"<Session target={self._master.target!r}>"
