"""Dependency-counting plan execution on the discrete-event simulator.

The executor dispatches items off a ready list, mirroring TensorFlow's
executor rather than spawning one thread per node: every item carries a
static dependency count (precomputed by ``build_plan``); when an item
completes, its dependents' counters drop, and freshly-ready items are
dispatched.

Dispatch has three lanes:

* **inline fast path** — ``const`` items and ops whose kernels are plain
  functions with zero-duration costs (``Const``, ``Identity``, variable
  reads, ``Reshape``-style metadata ops, ``NoOp``) run synchronously in
  the dispatcher, with no simulator :class:`Process`, no calendar events,
  and only a synchronous claim/return on the device FIFO;
* **light lane** — non-generator kernels that do advance the clock (or
  must wait for a device slot) run through a hand-rolled callback chain:
  device request, one timeout for the kernel's cost, release. Same
  simulated timestamps as a process, but no generator machinery and
  roughly half the calendar events. ``recv`` items complete off the
  rendezvous value the same way;
* **driven-generator lane** — generator kernels (queues, datasets, tile
  I/O) and ``send`` items (multi-event transport modelling) are driven
  through event callbacks: identical events and timestamps to a simulator
  process, minus the process object and its bookkeeping events;
* **compiled lane** — ``fused`` items (plan-time kernel fusion,
  :mod:`repro.core.optimizer.kernel_fusion`) carry a precompiled chain of
  pure ops executed as ONE plan item. When the dispatcher can prove the
  chain's whole span is uncontended — no fault injection, every other
  item on the device already complete, no mid-chain external observers —
  it runs every member kernel back to back (``CompiledChain.compute``)
  and schedules ONE calendar event for the summed cost, landing on the
  bit-identical end timestamp via ``Environment.timeout_at``. Otherwise a
  :class:`_ChainCursor` steps the members through the ready deque one at
  a time, replaying their unfused light/inline-lane events exactly —
  including mid-chain FIFO waits, GIL holds, and notification of external
  dependents at member completion. Either way, fetch values, simulated
  time and device-pool behaviour are byte-identical to dispatching the
  members individually.

``executor_fast_path=False`` bypasses all three lanes and restores the
legacy executor — one simulator :class:`Process` per plan item, each
waiting on an ``AllOf`` of its producers (``RunMetadata.process_items``
counts those; fast-path runs report ``fast_path_items`` instead).

Device serialization happens through the device's
:class:`~repro.simnet.resources.Resource`; cross-device movement goes
through the run's :class:`~repro.runtime.rendezvous.Rendezvous` with
transport costs charged by :mod:`repro.simnet.transports`.
"""

from __future__ import annotations

import inspect
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.kernels import registry as kernel_registry
from repro.core.kernels.registry import KernelContext, get_kernel
from repro.core.metadata import NodeStats, RunMetadata, TransferStats
from repro.core.partition import FEED, ExecutionPlan, Item, _job_task_of
from repro.core.tensor import value_nbytes
from repro.errors import DeadlineExceededError, InternalError
from repro.runtime.retry import retry_gen
from repro.simnet import transports
from repro.simnet.events import AllOf, Environment, Event

__all__ = [
    "ExecutionState",
    "launch_plan",
    "DEFAULT_COLLECTIVE_JOIN_TIMEOUT",
]

# Default deadline (simulated seconds) on a collective's rank rendezvous.
# Far above any legitimate single-op completion in this codebase's
# workloads (the largest modelled transfers finish in seconds), so a
# rank that never arrives — a crashed worker, a stalled producer chain —
# turns a silent deadlock into a DeadlineExceededError naming the
# missing ranks. ``SessionConfig.operation_timeout_ms`` overrides it.
DEFAULT_COLLECTIVE_JOIN_TIMEOUT = 300.0

# Ops that block on external conditions and must not occupy a device slot
# while waiting (a blocked dequeue would otherwise starve the device).
_NO_DEVICE_HOLD = {
    "QueueEnqueue",
    "QueueDequeue",
    "QueueSize",
    "QueueClose",
    "NoOp",
}

# Ops eligible for inline dispatch: plain-function kernels that never
# yield, never touch the clock, and always resolve to a zero-duration
# cost (kind "none"). They still respect the device FIFO — a free slot is
# claimed and returned synchronously (no calendar events), a busy device
# queues them like any other op — so simulated timestamps match the
# legacy executor exactly. Eligibility is declared at kernel
# registration (``register_kernel(..., inline=True)``); this live view
# keeps the historic ``op.type in _INLINE_OPS`` spelling working while
# the registry stays the single source of op metadata (the same pattern
# as ``PURE_OPS`` in the optimizer pipeline).


class _RegistryInlineOps:
    def __contains__(self, op_type: object) -> bool:
        return isinstance(op_type, str) and kernel_registry.is_inline(op_type)

    def __iter__(self):
        return iter(sorted(kernel_registry.inline_op_types()))


_INLINE_OPS = _RegistryInlineOps()

# Stateful ops whose outputs alias resource-manager storage: their output
# memory is accounted once per variable, not per execution.
_VARIABLE_OPS = {"VariableV2", "Assign", "AssignAdd", "AssignSub"}


@dataclass
class _Allocation:
    pool: Any
    nbytes: int
    remaining_consumers: int
    freed: bool = False


class _CollectiveGroup:
    """Per-run rendezvous of one lowered collective op's rank legs.

    Every leg deposits its device and (for data-carrying ranks) its input
    value; the last leg to arrive drives the shared ring schedule over
    the simulated transports and publishes the per-rank results through
    ``done``. Legs block on ``done`` without holding a device slot, so a
    straggling producer on a peer rank can never deadlock the ring.
    """

    __slots__ = ("op_name", "world", "devices", "values", "arrived",
                 "arrived_ranks", "done", "results")

    def __init__(self, env: Environment, world: int, op_name: str = ""):
        self.op_name = op_name
        self.world = world
        self.devices: list = [None] * world
        self.values: list = [None] * world
        self.arrived = 0
        self.arrived_ranks: list[int] = []
        self.done = env.event()
        self.results: Optional[list] = None

    def missing_ranks(self) -> list[int]:
        present = set(self.arrived_ranks)
        return [r for r in range(self.world) if r not in present]


class ExecutionState:
    """Shared state of one session run."""

    def __init__(
        self,
        env: Environment,
        plan: ExecutionPlan,
        rendezvous,
        task_runtimes: dict,
        protocol: str,
        feeds: dict[str, Any],
        symbolic: bool,
        run_id: int,
        graph_seed: Optional[int],
        metadata: Optional[RunMetadata] = None,
        trace: bool = False,
        fast_path: bool = True,
        deadline_seconds: Optional[float] = None,
        retry_policy=None,
        fault_injector=None,
    ):
        self.env = env
        self.plan = plan
        self.rendezvous = rendezvous
        self.task_runtimes = task_runtimes
        self.protocol = protocol
        self.feeds = feeds
        self.symbolic = symbolic
        self.run_id = run_id
        self.graph_seed = graph_seed
        self.metadata = metadata
        self.trace = trace
        self.fast_path = fast_path
        # Fault tolerance: per-run deadline (None = no run watchdog, but
        # collectives still get DEFAULT_COLLECTIVE_JOIN_TIMEOUT), retry
        # policy for transient transport faults, and the machine's fault
        # injector (None when no faults are installed).
        self.deadline_seconds = deadline_seconds
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        # Items parked because their task is down (diagnostics).
        self.stalled_items: list[Item] = []
        self._jobtask_cache: dict[str, tuple[str, int]] = {}
        self._allocations: dict[tuple[int, int], _Allocation] = {}
        self._var_memory: dict[str, tuple[Any, int]] = {}
        # Collective op name -> this run's rank-leg rendezvous.
        self._collective_groups: dict[str, _CollectiveGroup] = {}
        # Per-run memoization: device-string lookups and kernel contexts
        # are hot (once per item execution) and constant within a run.
        self._task_cache: dict[str, Any] = {}
        self._device_cache: dict[str, Any] = {}
        self._ctx_cache: dict[str, KernelContext] = {}

    # -- resolution ------------------------------------------------------------
    def task_runtime(self, device: str):
        cached = self._task_cache.get(device)
        if cached is not None:
            return cached
        job, task = _job_task_of(device)
        try:
            runtime = self.task_runtimes[(job, task)]
        except KeyError:
            raise InternalError(
                f"No runtime for task /job:{job}/task:{task}"
            ) from None
        self._task_cache[device] = runtime
        return runtime

    def device_obj(self, device: str):
        cached = self._device_cache.get(device)
        if cached is None:
            cached = self._device_cache[device] = self.task_runtime(
                device
            ).device(device)
        return cached

    def memory_pool(self, device: str):
        return self.task_runtime(device).memory_pools[device]

    def kernel_ctx(self, device: str) -> KernelContext:
        """The (immutable-per-run) kernel context for ``device``."""
        ctx = self._ctx_cache.get(device)
        if ctx is None:
            task = self.task_runtime(device)
            ctx = KernelContext(
                symbolic=self.symbolic,
                feeds=self.feeds,
                resources=task.resources,
                env=self.env,
                device=self.device_obj(device),
                worker=task,
                run_id=self.run_id,
                graph_seed=self.graph_seed,
            )
            self._ctx_cache[device] = ctx
        return ctx

    def task_down(self, device: str) -> bool:
        """True when ``device``'s task is currently crashed."""
        if self.fault_injector is None:
            return False
        jobtask = self._jobtask_cache.get(device)
        if jobtask is None:
            jobtask = self._jobtask_cache[device] = _job_task_of(device)
        return self.fault_injector.is_down(*jobtask)

    def park_stalled(self, item: Item) -> None:
        """Record an item stalled on a down task; a peer's deadline or
        the run watchdog reports it (the item itself never completes)."""
        self.stalled_items.append(item)
        if self.metadata is not None:
            self.metadata.stalled_items += 1

    def count_deadline(self) -> None:
        if self.metadata is not None:
            self.metadata.deadline_exceeded += 1

    def collective_group(self, item: Item) -> _CollectiveGroup:
        """The (per-run) rank rendezvous of ``item``'s collective op.

        Created on the first leg's arrival, armed with a join watchdog:
        if the remaining ranks have not arrived within the run deadline
        (or :data:`DEFAULT_COLLECTIVE_JOIN_TIMEOUT`), ``done`` fails
        with :class:`DeadlineExceededError` naming arrived and missing
        ranks — a dropped rank can never silently deadlock the ring.
        """
        group = self._collective_groups.get(item.op.name)
        if group is None:
            group = _CollectiveGroup(
                self.env, item.op.get_attr("world"), item.op.name
            )
            self._collective_groups[item.op.name] = group
            self._arm_group_watchdog(group)
        return group

    def _arm_group_watchdog(self, group: _CollectiveGroup) -> None:
        timeout_s = (
            self.deadline_seconds
            if self.deadline_seconds is not None
            else DEFAULT_COLLECTIVE_JOIN_TIMEOUT
        )
        watchdog = self.env.timeout(timeout_s)

        def expire(_ev):
            if group.done.triggered:
                return
            missing = group.missing_ranks()
            if not missing:
                # Every rank joined; the schedule itself is still in
                # flight (a long transfer). That is the run watchdog's
                # jurisdiction, not the join deadline's.
                return
            down = (
                self.fault_injector.down_tasks() if self.fault_injector else []
            )
            detail = (
                f" (tasks down: {down})" if down else ""
            )
            self.count_deadline()
            # Defuse: with no leg waiting yet, an undefused failure would
            # abort the simulation loop instead of surfacing per-run.
            group.done.fail(DeadlineExceededError(
                f"Collective {group.op_name!r} join deadline of "
                f"{timeout_s:g} sim-seconds exceeded: rank(s) {missing} of "
                f"world {group.world} never arrived "
                f"(arrived: {sorted(group.arrived_ranks)}){detail}"
            )).defused()

        watchdog.callbacks.append(expire)

    # -- memory refcounting -------------------------------------------------------
    def register_outputs(self, item: Item, outputs: list) -> int:
        """Allocate device memory for an item's outputs; returns bytes."""
        is_variable = item.kind == "op" and item.op.type in _VARIABLE_OPS
        pool = self.memory_pool(item.device)
        total = 0
        if is_variable:
            # Alias of the variable's persistent storage: account once.
            var_name = (
                item.op.get_attr("var_name") or item.op.name
                if item.op.type != "VariableV2"
                else item.op.name
            )
            task = self.task_runtime(item.device)
            nbytes = sum(value_nbytes(v) for v in outputs)
            previous = task.resources.variables.get("__mem__" + var_name)
            if previous is None or previous[1] != nbytes:
                if previous is not None:
                    previous[0].free(previous[1])
                pool.allocate(nbytes)
                task.resources.variables["__mem__" + var_name] = (pool, nbytes)
            return nbytes
        for idx, value in enumerate(outputs):
            nbytes = value_nbytes(value)
            total += nbytes
            consumers = (
                item.consumer_counts[idx] if idx < len(item.consumer_counts) else 0
            )
            pool.allocate(nbytes)
            alloc = _Allocation(pool, nbytes, consumers)
            self._allocations[(item.uid, idx)] = alloc
            if consumers == 0:
                # Dead output: freed as soon as it was produced.
                alloc.freed = True
                pool.free(nbytes)
        return total

    def consume(self, producer: Item, idx: int) -> None:
        alloc = self._allocations.get((producer.uid, idx))
        if alloc is None or alloc.freed:
            return
        alloc.remaining_consumers -= 1
        if alloc.remaining_consumers <= 0:
            alloc.freed = True
            alloc.pool.free(alloc.nbytes)

    def release_all(self) -> None:
        """Free whatever survived the run (fetched values, errors)."""
        for alloc in self._allocations.values():
            if not alloc.freed:
                alloc.freed = True
                alloc.pool.free(alloc.nbytes)
        self._allocations.clear()

    # -- value plumbing -----------------------------------------------------------
    def resolve_source(self, source) -> Any:
        head, idx = source
        if head is FEED:
            return self.feeds[idx]
        if head.out_values is None:
            raise InternalError(f"Source {head!r} has not produced values")
        return head.out_values[idx]


def launch_plan(state: ExecutionState) -> Optional[Event]:
    """Dispatch the plan; returns an event firing when every item is done.

    With the fast path enabled (default) the dependency-counting
    dispatcher runs; ``executor_fast_path=False`` falls back to the legacy
    executor — one simulator process per plan item, each waiting on an
    ``AllOf`` of its producers' processes — kept both as an opt-out and as
    the baseline ``benchmarks/bench_optimizer.py`` measures against.

    Returns ``None`` for empty plans (everything fetched was fed).
    """
    if not state.plan.items:
        return None
    if not state.fast_path:
        return _legacy_launch(state)
    return _Dispatcher(state).start()


def _item_desc(item: Item) -> str:
    if item.op is not None:
        return f"{item.kind}:{item.op.name}@{item.device}"
    if item.kind in ("send", "recv"):
        return f"{item.kind}:{item.key}"
    return f"{item.kind}:{item.uid}@{item.device}"


def _run_deadline_message(state: ExecutionState, timeout_s: float,
                          remaining: int) -> str:
    """Diagnostic for a run-level deadline: what is stuck, and why."""
    parts = [
        f"Session run exceeded operation timeout of {timeout_s:g} "
        f"sim-seconds: {remaining} of {len(state.plan.items)} plan items "
        f"incomplete"
    ]
    if state.stalled_items:
        stalled = [_item_desc(it) for it in state.stalled_items[:4]]
        parts.append(f"items stalled on down tasks: {stalled}")
    if state.fault_injector is not None:
        down = state.fault_injector.down_tasks()
        if down:
            parts.append(f"tasks down: {down}")
    pending = state.rendezvous.pending_keys()
    if pending:
        parts.append(f"rendezvous keys still waiting: {pending[:4]}")
    return "; ".join(parts)


def _legacy_launch(state: ExecutionState) -> Event:
    """Spawn every item as a process up front (the pre-optimizer design)."""
    env = state.env
    processes = []
    for item in state.plan.items:
        proc = env.process(
            _legacy_item_proc(state, item), name=f"item:{item.uid}"
        )
        item.process = proc
        processes.append(proc)
    if state.metadata is not None:
        state.metadata.process_items += len(processes)
    inner = AllOf(env, processes)
    if state.deadline_seconds is None:
        return inner
    # Run watchdog, legacy lane: mirror the fast path's per-run deadline
    # by racing the AllOf against a timeout through a wrapper event. The
    # run-level backstop fires at twice the operation deadline so the
    # sharper per-op watchdogs (collective join, recv) report first.
    done = env.event()
    timeout_s = state.deadline_seconds * 2.0

    def forward(ev):
        if not ev._ok:
            ev._defused = True
        if done.triggered:
            return
        if ev._ok:
            done.succeed(ev._value)
        else:
            done.fail(ev._value)

    def expire(_ev):
        if done.triggered or inner.triggered:
            return
        state.count_deadline()
        remaining = sum(1 for p in processes if p.is_alive)
        done.fail(DeadlineExceededError(
            _run_deadline_message(state, timeout_s, remaining)
        ))

    inner.callbacks.append(forward)
    env.timeout(timeout_s).callbacks.append(expire)
    return done


def _legacy_dependencies(item: Item) -> list:
    deps = []
    seen = set()
    for source in item.sources:
        if source[0] is not FEED:
            producer = source[0]
            if producer.uid not in seen:
                seen.add(producer.uid)
                deps.append(producer.process)
    for dep in item.extra_deps:
        if dep.uid not in seen:
            seen.add(dep.uid)
            deps.append(dep.process)
    return deps


def _legacy_item_proc(state: ExecutionState, item: Item):
    if state.task_down(item.device):
        # The task died: park forever on a fresh event. Peers' deadlines
        # (collective join, recv, run watchdog) report the loss.
        state.park_stalled(item)
        yield state.env.event()
    deps = _legacy_dependencies(item)
    if deps:
        yield AllOf(state.env, deps)
    if state.task_down(item.device):
        # Crashed while waiting on producers (the fault fired mid-run).
        state.park_stalled(item)
        yield state.env.event()
    yield from _item_proc(state, item)


class _Dispatcher:
    """Ready-list scheduler with per-item dependency counters."""

    def __init__(self, state: ExecutionState):
        self.state = state
        self.env = state.env
        self.counts = {
            item.uid: item.num_deps for item in state.plan.items
        }
        self.remaining = len(state.plan.items)
        self.done = self.env.event()
        self.finished = False
        self.faults = state.fault_injector
        # Merged-path admission counters (one per mergeable fused chain),
        # copied from the plan's static analysis: the number of
        # same-device non-descendant items still incomplete. At zero,
        # nothing can touch the chain's device mid-span.
        self._blockers: Optional[dict] = (
            dict(state.plan.chain_blockers)
            if state.plan.chain_blockers else None
        )

    def start(self) -> Event:
        if self.state.deadline_seconds is not None:
            self._arm_run_watchdog()
        self._dispatch(
            item for item in self.state.plan.items if item.num_deps == 0
        )
        return self.done

    def _arm_run_watchdog(self) -> None:
        """Fail the run if any item is still incomplete at the deadline.

        The run-level backstop fires at twice the operation deadline:
        the per-op watchdogs (collective join, recv) run at 1x and carry
        the sharper diagnostics (which ranks/keys stalled), so they get
        first claim on failing the run.
        """
        state = self.state
        timeout_s = state.deadline_seconds * 2.0
        watchdog = self.env.timeout(timeout_s)

        def expire(_ev):
            if self.finished:
                return
            state.count_deadline()
            self._fail(DeadlineExceededError(_run_deadline_message(
                state, timeout_s, self.remaining
            )))

        watchdog.callbacks.append(expire)

    # -- completion bookkeeping ------------------------------------------------
    def _completed(self, item: Item) -> list[Item]:
        self.remaining -= 1
        if self._blockers is not None and item.unblocks is not None:
            for uid in item.unblocks:
                self._blockers[uid] -= 1
        ready = []
        for dependent in item.dependents:
            self.counts[dependent.uid] -= 1
            if self.counts[dependent.uid] == 0:
                ready.append(dependent)
        if self.remaining == 0 and not self.finished:
            self.finished = True
            self.done.succeed()
        return ready

    def _fail(self, exc: BaseException) -> None:
        if not self.finished:
            self.finished = True
            self.done.fail(exc)

    def _item_done(self, item: Item) -> None:
        """Light-lane completion: bookkeeping plus cascading dispatch."""
        self._dispatch(self._completed(item))

    # -- dispatch ---------------------------------------------------------------
    def _dispatch(self, ready) -> None:
        queue = deque(ready)
        while queue:
            if self.finished and self.remaining > 0:
                return  # a failure was reported: stop feeding new work
            item = queue.popleft()
            try:
                if item.kind == "chain":
                    # A fused chain's cursor re-enqueued itself after a
                    # member: run the next member (fault check inside,
                    # against the member item, as unfused dispatch would).
                    item.advance(queue)
                    continue
                if self.faults is not None and self.state.task_down(item.device):
                    # The item's task is crashed: park it (never completes).
                    # Peers' deadlines surface the loss as an error.
                    self.state.park_stalled(item)
                    continue
                if item.kind == "const":
                    _finish_const(self.state, item)
                    self._count_fast()
                    queue.extend(self._completed(item))
                elif item.kind == "recv":
                    self._start_recv(item)
                elif item.kind == "send":
                    self._start_driven(item, _run_send(self.state, item))
                elif item.kind == "collective":
                    self._start_driven(
                        item, _run_collective(self.state, item)
                    )
                elif item.kind == "fused":
                    # Compiled lane (see kernel_fusion.CompiledChain).
                    self._start_chain(item, queue)
                else:  # "op"
                    if self._start_op(item):
                        queue.extend(self._completed(item))
            except BaseException as exc:  # kernel/validation errors
                self._fail(exc)
                return

    def _count_fast(self) -> None:
        if self.state.metadata is not None:
            self.state.metadata.fast_path_items += 1

    def _guard(self, fn) -> None:
        """Run a continuation; route exceptions to the run's done event."""
        try:
            fn()
        except BaseException as exc:
            self._fail(exc)

    # -- light lane: driven generators -------------------------------------------
    def _start_driven(self, item: Item, gen) -> None:
        """Drive a generator through event callbacks, without a Process.

        Semantically identical to spawning the generator as a simulator
        process — same events, same timestamps — but skips the process
        object, its Initialize event and its completion event. Failures of
        yielded events are thrown into the generator (so its cleanup runs)
        and then surface through the run's done event.
        """

        def advance(send_value, throw_exc):
            while True:
                try:
                    if throw_exc is not None:
                        target = gen.throw(throw_exc)
                    else:
                        target = gen.send(send_value)
                except StopIteration:
                    self._count_fast()
                    self._item_done(item)
                    return
                except BaseException as exc:
                    self._fail(exc)
                    return
                if target.callbacks is None:  # already processed
                    if target._ok:
                        send_value, throw_exc = target._value, None
                    else:
                        target._defused = True
                        send_value, throw_exc = None, target._value
                    continue
                target.callbacks.append(resume)
                return

        def resume(event):
            if event._ok:
                advance(event._value, None)
            else:
                event._defused = True
                advance(None, event._value)

        advance(None, None)

    # -- light lane: recv --------------------------------------------------------
    def _start_recv(self, item: Item) -> None:
        state = self.state

        def deliver(value):
            item.out_values = [value]
            if value is not None:
                state.register_outputs(item, [value])
            self._count_fast()
            self._item_done(item)

        # The matching send usually completed already (it is a registered
        # dependency of this recv): take the value without event traffic.
        present, value = state.rendezvous.recv_nowait(item.key)
        if present:
            deliver(value)
            return
        event = state.rendezvous.recv(
            item.key, deadline=state.deadline_seconds
        )

        def on_event(_ev):
            if event._ok:
                self._guard(lambda: deliver(event._value))
            else:
                # Failed recv (deadline, dead producer): surface the
                # exception instead of delivering it as a tensor value.
                event._defused = True
                if isinstance(event._value, DeadlineExceededError):
                    state.count_deadline()
                self._fail(event._value)

        event.callbacks.append(on_event)

    # -- light lane: op ----------------------------------------------------------
    def _start_op(self, item: Item) -> bool:
        """Begin a light-lane op; returns True if it completed synchronously.

        Generator kernels fall back to the process lane (the generator is
        created lazily, so nothing has executed yet when we hand it over).
        """
        state = self.state
        op = item.op
        if op.type in _NO_DEVICE_HOLD:
            # Queue ops have generator kernels and fall back inside
            # _run_op_body; other no-hold ops complete inline.
            return self._run_op_body(item, None, state.env.now)
        device = state.device_obj(item.device)
        request = device.resource.try_acquire()
        if request is not None:
            if op.type in _INLINE_OPS:
                # Zero-duration metadata op: the hold would last zero
                # simulated seconds, so claim and return the slot now —
                # FIFO grant order is unchanged, no events are scheduled.
                device.resource.release(request)
                return self._run_op_body(item, None, state.env.now)
            return self._run_op_body(item, request, state.env.now)
        start = state.env.now
        request = device.resource.request()
        request.callbacks.append(
            lambda _ev: self._guard(
                lambda: self._run_op_granted(item, request, start)
            )
        )
        return False

    def _run_op_granted(self, item: Item, request, start: float) -> None:
        """Continuation once a queued device request is finally granted."""
        if self._run_op_body(item, request, start):
            self._item_done(item)

    def _run_op_body(self, item: Item, request, start: float) -> bool:
        """Kernel execution once the device slot (if any) is held.

        ``start`` is the dispatch time (before any device-queue wait), so
        traced durations include the wait exactly as the legacy lane
        reports them. Returns True when the item completed synchronously;
        asynchronous completions (timeouts, GIL waits) cascade through
        _item_done.
        """
        state = self.state
        op = item.op
        try:
            kernel = get_kernel(op.type)
            inputs = [state.resolve_source(s) for s in item.sources]
            ctx = state.kernel_ctx(item.device)
            result = kernel(op, inputs, ctx)
            if inspect.isgenerator(result):
                # Blocking kernel: drive it as a callback chain that
                # inherits (and eventually releases) the held request.
                self._start_driven(
                    item, _finish_generator(state, item, result, request, start)
                )
                return False
            outputs, cost = result
            seconds = _cost_seconds(state, item, cost)
        except BaseException:
            if request is not None:
                state.device_obj(item.device).resource.release(request)
            raise
        if seconds <= 0:
            self._finish_op(item, request, outputs, start)
            return True

        if cost.host_bytes > 0:
            # Host-side Python work serializes on the task's GIL.
            task = state.task_runtime(item.device)
            gil_req = task.gil.try_acquire()

            def with_gil(_ev=None):
                def work():
                    timeout = state.env.timeout(seconds)
                    timeout.callbacks.append(
                        lambda _t: self._guard(release_and_finish)
                    )

                self._guard(work)

            def release_and_finish():
                task.gil.release(gil_req)
                self._finish_op(item, request, outputs, start)
                self._item_done(item)

            if gil_req is not None:
                with_gil()
            else:
                gil_req = task.gil.request()
                gil_req.callbacks.append(with_gil)
        else:
            timeout = state.env.timeout(seconds)

            def on_elapsed(_ev):
                def work():
                    self._finish_op(item, request, outputs, start)
                    self._item_done(item)

                self._guard(work)

            timeout.callbacks.append(on_elapsed)
        return False

    def _finish_op(self, item: Item, request, outputs, start: float) -> None:
        state = self.state
        if request is not None:
            state.device_obj(item.device).resource.release(request)
        _finalize_op(state, item, outputs, start)
        self._count_fast()

    # -- compiled lane: fused chains ---------------------------------------------
    def _start_chain(self, item: Item, queue) -> None:
        """Dispatch a fused chain: merged single-event path when provably
        uncontended, per-member cursor otherwise."""
        if (
            self.faults is None
            and self._blockers is not None
            and self._blockers.get(item.uid) == 0
        ):
            # Every same-device FIFO-capable non-descendant item already
            # completed (build_plan admitted this chain as mergeable and
            # counted its blockers): the device FIFO is provably
            # uncontended for the chain's whole span.
            if self._run_chain_merged(item, queue):
                return
        _ChainCursor(self, item).advance(queue)

    def _run_chain_merged(self, item: Item, queue) -> bool:
        """Run a whole chain as one kernel burst plus one calendar event.

        Preconditions (checked by the caller): no fault injection, and
        every same-device FIFO-capable item (device-holding op,
        collective, other fused chain) that is not a descendant of the
        chain has completed — descendants cannot become ready before the
        tail completes, so nothing can contend the device FIFO or
        observe a member mid-span (build_plan admits only chains with no
        mid-chain external observers; see
        ``ExecutionPlan.chain_blockers``). Holding the device once is
        then event-identical to the members' individual hold/release
        pairs (uncontended claims are synchronous). The device pool sees
        the same allocate/free multiset, replayed at the chain's end; a
        send/recv/const completing mid-span therefore interleaves with
        the members' pool traffic differently than per-member dispatch
        would, which can shift ``MemoryPool.peak`` and, at capacity
        edges, which item exhausts memory first — values and simulated
        time are unaffected.

        Returns False to fall back to the per-member cursor: on device
        contention, host-bound (GIL) costs whose lock is shared across
        the task's devices, or any kernel error — members are pure, so
        the cursor re-runs them and surfaces the error at the exact
        simulated instant the unfused plan would.
        """
        state = self.state
        chain = item.compiled
        resource = state.device_obj(item.device).resource
        request = resource.try_acquire()
        if request is None:
            return False
        t0 = state.env.now
        try:
            ext = [state.resolve_source(s) for s in item.sources]
            vals, secs, host = chain.compute(
                ext, state.kernel_ctx(item.device), state.device_obj(item.device)
            )
        except BaseException:
            resource.release(request)
            return False
        if host > 0:
            resource.release(request)
            return False
        # Fold the end time exactly as the per-member timeouts would:
        # each timed member advances the clock by one float addition.
        end = t0
        for s in secs:
            if s > 0.0:
                end = end + s
        if end <= t0:
            resource.release(request)
            self._finish_chain_merged(item, vals, secs, t0)
            queue.extend(self._completed(item))
            return True
        event = state.env.timeout_at(end)

        def on_elapsed(_ev):
            def work():
                resource.release(request)
                self._finish_chain_merged(item, vals, secs, t0)
                self._item_done(item)

            self._guard(work)

        event.callbacks.append(on_elapsed)
        return True

    def _finish_chain_merged(self, item: Item, vals, secs, t0: float) -> None:
        """Completion bookkeeping for a merged chain, member by member,
        with each member's trace timestamps reconstructed from the fold."""
        state = self.state
        steps = item.compiled.steps
        trace = state.trace and state.metadata is not None
        last = len(steps) - 1
        t = t0
        for pos, step in enumerate(steps):
            start = t
            if secs[pos] > 0.0:
                t = t + secs[pos]
            outputs = vals[pos]
            if pos == last:
                item.out_values = outputs
                state.register_outputs(item, outputs)
            else:
                step.member.out_values = outputs
                state.register_outputs(step.member, outputs)
            for ref in step.consumes:
                state.consume(ref[0], ref[1])
            if trace:
                _record_member(state, step.member, start, t, outputs)
            self._count_fast()
        # Deferred mid-member notifications: admission guarantees every
        # such dependent is a descendant of the fused item, so none can
        # reach zero before the caller's _completed(fused) decrement —
        # final counter values match the unfused plan exactly.
        counts = self.counts
        for step in steps[:-1]:
            for dep in step.member.dependents:
                counts[dep.uid] -= 1
        if state.metadata is not None:
            state.metadata.merged_chains += 1


class _ChainCursor:
    """Per-member fast-path runner for one fused chain.

    A ``kind="chain"`` ready-queue entry: executes chain members one at a
    time through the dispatcher's deque, replaying the exact event
    sequence the members' unfused light/inline-lane dispatches would
    produce — per-member device FIFO claim (inline members return a free
    slot synchronously), kernel call, cost timeout, GIL hold for
    host-bound costs, then allocation/refcount bookkeeping at the
    member's completion instant. A mid-chain member with external
    observers publishes its outputs under the member item and notifies
    the dependents at completion; the cursor re-enqueues itself among the
    newly-ready dependents at the slot the next member's pre-fusion plan
    order dictates, so the ready list is ordered exactly as unfused.
    """

    __slots__ = ("d", "item", "steps", "ext", "vals", "pos")

    kind = "chain"

    def __init__(self, d: "_Dispatcher", item: Item):
        self.d = d
        self.item = item
        self.steps = item.compiled.steps
        # Every external producer is an ancestor of the chain head, so
        # all inputs are resolvable (and refcount-pinned) at chain start.
        self.ext = [d.state.resolve_source(s) for s in item.sources]
        self.vals: list = [None] * len(self.steps)
        self.pos = 0

    def advance(self, queue) -> None:
        """Dispatch the current member. ``queue`` is the live ready deque
        when called synchronously from ``_dispatch``, else None (async
        completions cascade through a fresh dispatch)."""
        d = self.d
        state = d.state
        step = self.steps[self.pos]
        if d.faults is not None and state.task_down(self.item.device):
            # The task died between members: park the member item, as its
            # unfused dispatch would. The chain never completes.
            state.park_stalled(step.member)
            return
        start = state.env.now
        resource = state.device_obj(self.item.device).resource
        request = resource.try_acquire()
        if request is not None:
            if step.inline:
                # Zero-duration member on a free device (inline-lane rule).
                resource.release(request)
                request = None
            self._run_member(queue, request, start)
        else:
            request = resource.request()
            request.callbacks.append(
                lambda _ev: d._guard(
                    lambda: self._run_member(None, request, start)
                )
            )

    def _run_member(self, queue, request, start: float) -> None:
        d = self.d
        state = d.state
        step = self.steps[self.pos]
        try:
            inputs = [
                self.ext[t[1]] if t[0] == "x" else self.vals[t[1]][t[2]]
                for t in step.spec
            ]
            outputs, cost = step.kernel(
                step.op, inputs, state.kernel_ctx(self.item.device)
            )
            seconds = _cost_seconds(state, step.member, cost)
        except BaseException:
            if request is not None:
                state.device_obj(self.item.device).resource.release(request)
            raise
        if seconds <= 0:
            self._member_done(queue, request, outputs, start)
            return
        if cost.host_bytes > 0:
            task = state.task_runtime(self.item.device)
            gil_req = task.gil.try_acquire()

            def with_gil(_ev=None):
                def work():
                    timeout = state.env.timeout(seconds)
                    timeout.callbacks.append(
                        lambda _t: d._guard(release_and_finish)
                    )

                d._guard(work)

            def release_and_finish():
                task.gil.release(gil_req)
                self._member_done(None, request, outputs, start)

            if gil_req is not None:
                with_gil()
            else:
                gil_req = task.gil.request()
                gil_req.callbacks.append(with_gil)
        else:
            timeout = state.env.timeout(seconds)
            timeout.callbacks.append(
                lambda _ev: d._guard(
                    lambda: self._member_done(None, request, outputs, start)
                )
            )

    def _member_done(self, queue, request, outputs, start: float) -> None:
        d = self.d
        state = d.state
        pos = self.pos
        step = self.steps[pos]
        member = step.member
        if request is not None:
            state.device_obj(self.item.device).resource.release(request)
        self.vals[pos] = outputs
        last = pos == len(self.steps) - 1
        if last:
            self.item.out_values = outputs
            state.register_outputs(self.item, outputs)
        else:
            member.out_values = outputs
            state.register_outputs(member, outputs)
        for ref in step.consumes:
            state.consume(ref[0], ref[1])
        if state.trace and state.metadata is not None:
            _record_member(state, member, start, state.env.now, outputs)
        d._count_fast()
        if last:
            if queue is not None:
                queue.extend(d._completed(self.item))
            else:
                d._item_done(self.item)
            return
        self.pos = pos + 1
        deps = member.dependents
        if not deps:
            if queue is not None:
                queue.append(self)
            else:
                d._dispatch((self,))
            return
        # External observers: decrement their counters (the member is a
        # counted producer of each) and slot the chain's continuation
        # among the newly-ready ones by pre-fusion plan order — the exact
        # ready list the unfused member's completion would have produced
        # (dependents lists are built in plan order, so one pass places
        # the cursor where the next member's order falls).
        nxt = step.next_order
        counts = d.counts
        entries: list = []
        placed = False
        for dep in deps:
            counts[dep.uid] -= 1
            if counts[dep.uid] == 0:
                if not placed and dep.order > nxt:
                    entries.append(self)
                    placed = True
                entries.append(dep)
        if not placed:
            entries.append(self)
        if queue is not None:
            queue.extend(entries)
        else:
            d._dispatch(entries)


def _record_member(state: ExecutionState, member: Item, start: float,
                   end: float, outputs) -> None:
    """Tracing: one NodeStats per chain member, as the unfused lanes emit."""
    state.metadata.step_stats.append(
        NodeStats(
            device=member.device,
            op_name=member.op.name,
            op_type=member.op.type,
            start=start,
            end=end,
            out_bytes=sum(value_nbytes(v) for v in outputs or []),
        )
    )


def _cost_seconds(state: ExecutionState, item: Item, cost) -> float:
    """Simulated seconds the executing device charges for ``cost``."""
    if cost.kind not in ("compute", "memcpy", "io"):
        return 0.0
    return state.device_obj(item.device).time_for_cost(
        cost, item.op.type, item.double_precision
    )


def _finalize_op(state: ExecutionState, item: Item, outputs, start: float) -> None:
    """Post-kernel bookkeeping shared by every execution lane.

    Outputs are live before inputs can be released: the kernel's working
    set holds both (this is what makes big tiles tight on a 1 GB K420).
    """
    item.out_values = outputs
    state.register_outputs(item, outputs)
    for source in item.sources:
        if source[0] is not FEED:
            state.consume(source[0], source[1])
    _record_node_stats(state, item, start)


def _finish_generator(state: ExecutionState, item: Item, gen, request,
                      start: float):
    """Process-lane continuation for a light-lane op whose kernel yields."""
    env = state.env
    try:
        result = yield from gen
        outputs, cost = result
        seconds = _cost_seconds(state, item, cost)
        if seconds > 0:
            if cost.host_bytes > 0:
                task = state.task_runtime(item.device)
                gil_req = task.gil.request()
                yield gil_req
                try:
                    yield env.timeout(seconds)
                finally:
                    task.gil.release(gil_req)
            else:
                yield env.timeout(seconds)
    finally:
        if request is not None:
            state.device_obj(item.device).resource.release(request)
    _finalize_op(state, item, outputs, start)


def _record_node_stats(state: ExecutionState, item: Item, start: float) -> None:
    if state.trace and state.metadata is not None and item.op is not None:
        state.metadata.step_stats.append(
            NodeStats(
                device=item.device,
                op_name=item.op.name,
                op_type=item.op.type,
                start=start,
                end=state.env.now,
                out_bytes=sum(value_nbytes(v) for v in item.out_values or []),
            )
        )


def _finish_const(state: ExecutionState, item: Item) -> None:
    item.out_values = list(item.const_values)
    state.register_outputs(item, item.out_values)
    _record_node_stats(state, item, state.env.now)


def _item_proc(state: ExecutionState, item: Item):
    if item.kind == "send":
        yield from _run_send(state, item)
    elif item.kind == "recv":
        yield from _run_recv(state, item)
    elif item.kind == "collective":
        yield from _run_collective(state, item)
    elif item.kind == "const":
        # Fast path disabled: const items still complete instantly, just
        # inside a simulator process.
        _finish_const(state, item)
        return
    elif item.kind == "fused":
        yield from item.compiled.run(state, item)
    else:
        yield from _run_op(state, item)


def _run_send(state: ExecutionState, item: Item):
    env = state.env
    if item.sources:
        value = state.resolve_source(item.sources[0])
        nbytes = value_nbytes(value)
    else:
        value, nbytes = None, 0  # control edge
    src_dev = state.device_obj(item.device)
    dst_dev = state.device_obj(item.dst_device)
    start = env.now

    def count_retry(_exc, _delay):
        if state.metadata is not None:
            state.metadata.retries += 1

    # Transient transport faults (injected message drops) surface as
    # UnavailableError; with a retry policy configured the send backs
    # off and re-sends, otherwise the first failure propagates.
    yield from retry_gen(
        env,
        lambda: transports.transfer(src_dev, dst_dev, nbytes, state.protocol),
        state.retry_policy,
        on_retry=count_retry,
    )
    state.rendezvous.send(item.key, value)
    if item.sources:
        producer, idx = item.sources[0]
        state.consume(producer, idx)
    if state.trace and state.metadata is not None:
        state.metadata.transfers.append(
            TransferStats(
                key=item.key,
                src_device=item.device,
                dst_device=item.dst_device,
                nbytes=nbytes,
                start=start,
                end=env.now,
                protocol=state.protocol,
            )
        )
    item.out_values = []


def _run_recv(state: ExecutionState, item: Item):
    try:
        value = yield state.rendezvous.recv(
            item.key, deadline=state.deadline_seconds
        )
    except DeadlineExceededError:
        state.count_deadline()
        raise
    item.out_values = [value]
    if value is not None:
        state.register_outputs(item, [value])


def _collective_schedule(state: ExecutionState, item: Item,
                         group: _CollectiveGroup):
    """The schedule generator for one collective op over its rank devices.

    Resolved through the strategy registry of
    :mod:`repro.runtime.collective` with the algorithm the lowering chose
    (``Item.collective_algorithm``) — the rendezvous below drives
    whatever schedule is registered, so new algorithms never touch the
    executor, in either dispatch lane.
    """
    from repro.runtime import collective as collective_runtime

    op = item.op
    protocol = op.get_attr("protocol") or state.protocol
    strategy = collective_runtime.get_strategy(
        op.type, item.collective_algorithm or "ring"
    )
    return strategy(group.devices, group.values, protocol)


def _run_collective(state: ExecutionState, item: Item):
    """One rank leg of a lowered collective op.

    The leg publishes its device and rank input into the run's group
    rendezvous; the last leg to arrive drives the registered strategy's
    schedule (so the op's simulated time is exactly the standalone
    generator's), and every leg completes at the schedule's finish time
    holding its own rank's result. Legs never occupy a device slot while
    blocked — the schedule's wire time is charged on the transports, and
    the per-step host math inside the generator accounts the device-side
    adds.
    """
    rank = item.collective_rank
    group = state.collective_group(item)
    start = state.env.now
    group.devices[rank] = state.device_obj(item.device)
    if item.sources:
        group.values[rank] = state.resolve_source(item.sources[0])
    group.arrived += 1
    group.arrived_ranks.append(rank)
    if state.metadata is not None:
        state.metadata.collective_items += 1
    if group.arrived == group.world:
        try:
            results = yield from _collective_schedule(state, item, group)
        except BaseException as exc:
            # Wake the peer legs so their cleanup runs; the failure still
            # surfaces through this leg (and the run's done event).
            if group.world > 1 and not group.done.triggered:
                group.done.fail(exc)
            raise
        group.results = results
        group.done.succeed()
    else:
        yield group.done
    result = group.results[rank]
    item.out_values = [result]
    state.register_outputs(item, [result])
    if item.sources and item.sources[0][0] is not FEED:
        producer, idx = item.sources[0]
        state.consume(producer, idx)
    _record_node_stats(state, item, start)


def _run_op(state: ExecutionState, item: Item):
    env = state.env
    op = item.op
    device = state.device_obj(item.device)
    task = state.task_runtime(item.device)
    kernel = get_kernel(op.type)
    inputs = [state.resolve_source(s) for s in item.sources]
    ctx = state.kernel_ctx(item.device)
    hold_device = op.type not in _NO_DEVICE_HOLD
    request = None
    start = env.now
    try:
        if hold_device:
            request = device.resource.request()
            yield request
        result = kernel(op, inputs, ctx)
        if inspect.isgenerator(result):
            result = yield from result
        outputs, cost = result
        seconds = _cost_seconds(state, item, cost)
        if seconds > 0:
            if cost.host_bytes > 0:
                # Host-side Python work serializes on the task's GIL.
                gil_req = task.gil.request()
                yield gil_req
                try:
                    yield env.timeout(seconds)
                finally:
                    task.gil.release(gil_req)
            else:
                yield env.timeout(seconds)
    finally:
        if request is not None:
            device.resource.release(request)
    _finalize_op(state, item, outputs, start)
