"""Per-item execution on the discrete-event simulator.

Every plan :class:`~repro.core.partition.Item` becomes one simulation
process. Dependencies are expressed by waiting on the producer items'
processes; device serialization happens through the device's
:class:`~repro.simnet.resources.Resource`; cross-device movement goes
through the run's :class:`~repro.runtime.rendezvous.Rendezvous` with
transport costs charged by :mod:`repro.simnet.transports`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.kernels.registry import Cost, KernelContext, get_kernel
from repro.core.metadata import NodeStats, RunMetadata, TransferStats
from repro.core.partition import FEED, ExecutionPlan, Item, _job_task_of
from repro.core.tensor import value_nbytes
from repro.errors import InternalError
from repro.simnet import transports
from repro.simnet.events import AllOf, Environment

__all__ = ["ExecutionState", "launch_plan"]

# Ops that block on external conditions and must not occupy a device slot
# while waiting (a blocked dequeue would otherwise starve the device).
_NO_DEVICE_HOLD = {
    "QueueEnqueue",
    "QueueDequeue",
    "QueueSize",
    "QueueClose",
    "NoOp",
}

# Stateful ops whose outputs alias resource-manager storage: their output
# memory is accounted once per variable, not per execution.
_VARIABLE_OPS = {"VariableV2", "Assign", "AssignAdd", "AssignSub"}


@dataclass
class _Allocation:
    pool: Any
    nbytes: int
    remaining_consumers: int
    freed: bool = False


class ExecutionState:
    """Shared state of one session run."""

    def __init__(
        self,
        env: Environment,
        plan: ExecutionPlan,
        rendezvous,
        task_runtimes: dict,
        protocol: str,
        feeds: dict[str, Any],
        symbolic: bool,
        run_id: int,
        graph_seed: Optional[int],
        metadata: Optional[RunMetadata] = None,
        trace: bool = False,
    ):
        self.env = env
        self.plan = plan
        self.rendezvous = rendezvous
        self.task_runtimes = task_runtimes
        self.protocol = protocol
        self.feeds = feeds
        self.symbolic = symbolic
        self.run_id = run_id
        self.graph_seed = graph_seed
        self.metadata = metadata
        self.trace = trace
        self._allocations: dict[tuple[int, int], _Allocation] = {}
        self._var_memory: dict[str, tuple[Any, int]] = {}

    # -- resolution ------------------------------------------------------------
    def task_runtime(self, device: str):
        job, task = _job_task_of(device)
        try:
            return self.task_runtimes[(job, task)]
        except KeyError:
            raise InternalError(
                f"No runtime for task /job:{job}/task:{task}"
            ) from None

    def device_obj(self, device: str):
        return self.task_runtime(device).device(device)

    def memory_pool(self, device: str):
        return self.task_runtime(device).memory_pools[device]

    # -- memory refcounting -------------------------------------------------------
    def register_outputs(self, item: Item, outputs: list) -> int:
        """Allocate device memory for an item's outputs; returns bytes."""
        is_variable = item.kind == "op" and item.op.type in _VARIABLE_OPS
        pool = self.memory_pool(item.device)
        total = 0
        if is_variable:
            # Alias of the variable's persistent storage: account once.
            var_name = (
                item.op.get_attr("var_name") or item.op.name
                if item.op.type != "VariableV2"
                else item.op.name
            )
            task = self.task_runtime(item.device)
            nbytes = sum(value_nbytes(v) for v in outputs)
            previous = task.resources.variables.get("__mem__" + var_name)
            if previous is None or previous[1] != nbytes:
                if previous is not None:
                    previous[0].free(previous[1])
                pool.allocate(nbytes)
                task.resources.variables["__mem__" + var_name] = (pool, nbytes)
            return nbytes
        for idx, value in enumerate(outputs):
            nbytes = value_nbytes(value)
            total += nbytes
            consumers = (
                item.consumer_counts[idx] if idx < len(item.consumer_counts) else 0
            )
            pool.allocate(nbytes)
            alloc = _Allocation(pool, nbytes, consumers)
            self._allocations[(item.uid, idx)] = alloc
            if consumers == 0:
                # Dead output: freed as soon as it was produced.
                alloc.freed = True
                pool.free(nbytes)
        return total

    def consume(self, producer: Item, idx: int) -> None:
        alloc = self._allocations.get((producer.uid, idx))
        if alloc is None or alloc.freed:
            return
        alloc.remaining_consumers -= 1
        if alloc.remaining_consumers <= 0:
            alloc.freed = True
            alloc.pool.free(alloc.nbytes)

    def release_all(self) -> None:
        """Free whatever survived the run (fetched values, errors)."""
        for alloc in self._allocations.values():
            if not alloc.freed:
                alloc.freed = True
                alloc.pool.free(alloc.nbytes)
        self._allocations.clear()

    # -- value plumbing -----------------------------------------------------------
    def resolve_source(self, source) -> Any:
        head, idx = source
        if head is FEED:
            return self.feeds[idx]
        if head.out_values is None:
            raise InternalError(f"Source {head!r} has not produced values")
        return head.out_values[idx]


def launch_plan(state: ExecutionState) -> list:
    """Spawn one process per plan item; returns the process list."""
    processes = []
    for item in state.plan.items:
        proc = state.env.process(
            _item_proc(state, item), name=f"item:{item.uid}"
        )
        item.process = proc
        processes.append(proc)
    return processes


def _dependencies(item: Item) -> list:
    deps = []
    seen = set()
    for source in item.sources:
        if source[0] is not FEED:
            producer = source[0]
            if producer.uid not in seen:
                seen.add(producer.uid)
                deps.append(producer.process)
    for dep in item.extra_deps:
        if dep.uid not in seen:
            seen.add(dep.uid)
            deps.append(dep.process)
    return deps


def _is_double_precision(op) -> bool:
    for tensor in (*op.outputs, *op.inputs):
        if tensor.dtype.size >= 8 and (
            tensor.dtype.is_floating or tensor.dtype.is_complex
        ):
            return True
    return False


def _item_proc(state: ExecutionState, item: Item):
    env = state.env
    deps = _dependencies(item)
    if deps:
        yield AllOf(env, deps)
    if item.kind == "send":
        yield from _run_send(state, item)
    elif item.kind == "recv":
        yield from _run_recv(state, item)
    else:
        yield from _run_op(state, item)


def _run_send(state: ExecutionState, item: Item):
    env = state.env
    if item.sources:
        value = state.resolve_source(item.sources[0])
        nbytes = value_nbytes(value)
    else:
        value, nbytes = None, 0  # control edge
    src_dev = state.device_obj(item.device)
    dst_dev = state.device_obj(item.dst_device)
    start = env.now
    yield from transports.transfer(src_dev, dst_dev, nbytes, state.protocol)
    state.rendezvous.send(item.key, value)
    if item.sources:
        producer, idx = item.sources[0]
        state.consume(producer, idx)
    if state.trace and state.metadata is not None:
        state.metadata.transfers.append(
            TransferStats(
                key=item.key,
                src_device=item.device,
                dst_device=item.dst_device,
                nbytes=nbytes,
                start=start,
                end=env.now,
                protocol=state.protocol,
            )
        )
    item.out_values = []


def _run_recv(state: ExecutionState, item: Item):
    value = yield state.rendezvous.recv(item.key)
    item.out_values = [value]
    if value is not None:
        state.register_outputs(item, [value])


def _run_op(state: ExecutionState, item: Item):
    env = state.env
    op = item.op
    device = state.device_obj(item.device)
    task = state.task_runtime(item.device)
    kernel = get_kernel(op.type)
    inputs = [state.resolve_source(s) for s in item.sources]
    ctx = KernelContext(
        symbolic=state.symbolic,
        feeds=state.feeds,
        resources=task.resources,
        env=env,
        device=device,
        worker=task,
        run_id=state.run_id,
        graph_seed=state.graph_seed,
    )
    hold_device = op.type not in _NO_DEVICE_HOLD
    request = None
    start = env.now
    try:
        if hold_device:
            request = device.resource.request()
            yield request
        result = kernel(op, inputs, ctx)
        if inspect.isgenerator(result):
            result = yield from result
        outputs, cost = result
        seconds = 0.0
        if cost.kind in ("compute", "memcpy", "io"):
            seconds = device.time_for_cost(
                cost, op.type, _is_double_precision(op)
            )
        if seconds > 0:
            if cost.host_bytes > 0:
                # Host-side Python work serializes on the task's GIL.
                gil_req = task.gil.request()
                yield gil_req
                try:
                    yield env.timeout(seconds)
                finally:
                    task.gil.release(gil_req)
            else:
                yield env.timeout(seconds)
    finally:
        if request is not None:
            device.resource.release(request)
    # Outputs are live before inputs can be released: the kernel's working
    # set holds both (this is what makes big tiles tight on a 1 GB K420).
    item.out_values = outputs
    state.register_outputs(item, outputs)
    for source in item.sources:
        if source[0] is not FEED:
            state.consume(source[0], source[1])
    if state.trace and state.metadata is not None:
        state.metadata.step_stats.append(
            NodeStats(
                device=item.device,
                op_name=op.name,
                op_type=op.type,
                start=start,
                end=env.now,
                out_bytes=sum(value_nbytes(v) for v in outputs),
            )
        )
