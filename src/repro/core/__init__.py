"""The TF-like deferred-execution dataflow engine.

This package is the substrate the paper's applications are written against:
graphs of operations connected by tensors, executed through sessions on
(simulated) heterogeneous devices.
"""

from repro.core.graph import Graph, Operation, get_default_graph, reset_default_graph
from repro.core.tensor import SymbolicValue, Tensor, TensorShape

__all__ = [
    "Graph",
    "Operation",
    "Tensor",
    "TensorShape",
    "SymbolicValue",
    "get_default_graph",
    "reset_default_graph",
]
