"""Eager execution — the imperative mode the paper anticipates.

Section II notes that TensorFlow "also supports eager execution that
follows an imperative style and it will likely become the default
execution mode in future releases". This module provides that mode for
the same kernel library: ops execute immediately on NumPy values, no
graph or session involved, while still going through the registered
kernels (so costs could be accounted identically).

    from repro import eager

    ctx = eager.EagerContext(seed=0)
    a = ctx.random_uniform([4, 4])
    b = ctx.matmul(a, a)          # a plain numpy array, available now

Stateful structures (queues, datasets, distributed placement) remain
graph-mode features, as they were in TF 1.x eager.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro import dtypes
from repro.core.graph import Graph
from repro.core.kernels.registry import KernelContext, ResourceManager, get_kernel
from repro.core.tensor import TensorShape
from repro.errors import InvalidArgumentError, UnimplementedError

__all__ = ["EagerContext"]

# Ops whose kernels block on simulation events: not available eagerly.
_GRAPH_ONLY = {
    "QueueEnqueue", "QueueDequeue", "QueueSize", "QueueClose", "FIFOQueue",
    "IteratorV2", "IteratorGetNext", "ReadTile", "WriteTile", "Placeholder",
}


class _OpStub:
    """Minimal stand-in for an Operation, enough for any kernel."""

    __slots__ = ("type", "name", "attrs", "outputs", "node_id")

    def __init__(self, op_type: str, name: str, attrs: dict, output_dtypes,
                 node_id: int = 0):
        self.type = op_type
        self.name = name
        self.attrs = attrs
        # Distinct ids keep random streams independent across eager calls.
        self.node_id = node_id
        self.outputs = [
            _TensorStub(f"{name}:{i}", dt) for i, dt in enumerate(output_dtypes)
        ]

    def get_attr(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)


class _TensorStub:
    __slots__ = ("name", "dtype", "shape")

    def __init__(self, name: str, dtype):
        self.name = name
        self.dtype = dtypes.as_dtype(dtype)
        self.shape = TensorShape(None)


class EagerContext:
    """Executes kernels immediately, holding variable state imperatively."""

    def __init__(self, seed: Optional[int] = None):
        self._resources = ResourceManager(name="eager")
        self._seed = seed
        self._op_counter = 0
        self._ctx = KernelContext(
            symbolic=False,
            resources=self._resources,
            graph_seed=seed,
        )

    # -- core execution --------------------------------------------------------
    def execute(self, op_type: str, inputs: Sequence[Any] = (),
                attrs: Optional[dict] = None, output_dtypes=None):
        """Run one kernel immediately; returns its output value(s)."""
        if op_type in _GRAPH_ONLY:
            raise UnimplementedError(
                f"{op_type} requires graph mode (queues, datasets and tile "
                f"I/O depend on the simulated runtime)"
            )
        self._op_counter += 1
        arrays = [np.asarray(v) for v in inputs]
        if output_dtypes is None:
            output_dtypes = [arrays[0].dtype if arrays else np.float32]
        op = _OpStub(op_type, f"eager_{op_type}_{self._op_counter}",
                     attrs or {}, output_dtypes, node_id=self._op_counter)
        kernel = get_kernel(op_type)
        result = kernel(op, arrays, self._ctx)
        if not isinstance(result, tuple):
            raise UnimplementedError(
                f"{op_type} kernel is generator-based; graph mode only"
            )
        outputs, _cost = result
        if len(outputs) == 1:
            return outputs[0]
        return outputs

    # -- convenience wrappers ----------------------------------------------------
    def constant(self, value, dtype=None):
        arr = np.asarray(value)
        if dtype is not None:
            arr = arr.astype(dtypes.as_dtype(dtype).np_dtype)
        return arr

    def add(self, x, y):
        return self.execute("Add", [x, y])

    def subtract(self, x, y):
        return self.execute("Sub", [x, y])

    def multiply(self, x, y):
        return self.execute("Mul", [x, y])

    def divide(self, x, y):
        return self.execute("Div", [x, y])

    def matmul(self, a, b, transpose_a: bool = False, transpose_b: bool = False):
        return self.execute(
            "MatMul", [a, b],
            attrs={"transpose_a": transpose_a, "transpose_b": transpose_b},
        )

    def dot(self, x, y):
        return self.execute("Dot", [x, y])

    def reduce_sum(self, x, axis=None, keepdims: bool = False):
        axes = (axis,) if isinstance(axis, int) else axis
        return self.execute("Sum", [x], attrs={"axis": axes, "keepdims": keepdims})

    def sqrt(self, x):
        return self.execute("Sqrt", [x])

    def fft(self, x):
        x = np.asarray(x, dtype=np.complex128)
        return self.execute("FFT", [x], output_dtypes=[np.complex128])

    def ifft(self, x):
        x = np.asarray(x, dtype=np.complex128)
        return self.execute("IFFT", [x], output_dtypes=[np.complex128])

    def random_uniform(self, shape, minval: float = 0.0, maxval: float = 1.0,
                       dtype=dtypes.float32, seed: Optional[int] = None):
        return self.execute(
            "RandomUniform", [],
            attrs={"shape": tuple(int(d) for d in shape), "seed": seed,
                   "minval": float(minval), "maxval": float(maxval)},
            output_dtypes=[dtypes.as_dtype(dtype).np_dtype],
        )

    def random_normal(self, shape, mean: float = 0.0, stddev: float = 1.0,
                      dtype=dtypes.float32, seed: Optional[int] = None):
        return self.execute(
            "RandomNormal", [],
            attrs={"shape": tuple(int(d) for d in shape), "seed": seed,
                   "mean": float(mean), "stddev": float(stddev)},
            output_dtypes=[dtypes.as_dtype(dtype).np_dtype],
        )

    # -- imperative variables ------------------------------------------------------
    def variable(self, initial_value, name: Optional[str] = None) -> str:
        """Create a named mutable value; returns its handle (the name)."""
        name = name or f"eager_var_{self._op_counter}"
        self._op_counter += 1
        if name in self._resources.variables:
            raise InvalidArgumentError(f"Variable {name!r} already exists")
        self._resources.variables[name] = np.asarray(initial_value).copy()
        return name

    def read(self, handle: str):
        try:
            return self._resources.variables[handle]
        except KeyError:
            raise InvalidArgumentError(f"No variable {handle!r}") from None

    def assign(self, handle: str, value) -> None:
        self.read(handle)  # existence check
        self._resources.variables[handle] = np.asarray(value).copy()

    def assign_add(self, handle: str, delta) -> None:
        self._resources.variables[handle] = self.read(handle) + np.asarray(delta)
