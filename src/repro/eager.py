"""Eager execution — the imperative mode the paper anticipates.

Section II notes that TensorFlow "also supports eager execution that
follows an imperative style and it will likely become the default
execution mode in future releases". This module provides that mode for
the same op set as graph mode: every call builds the op through the
*same builders* the ``@repro.function`` tracer records, then evaluates
the resulting node(s) immediately through the kernel registry — no
Session, no simulator, NumPy values in and out.

    from repro import eager

    ctx = eager.EagerContext(seed=0)
    a = ctx.random_uniform([4, 4])
    b = ctx.matmul(a, a)          # a plain numpy array, available now

Coverage is registry-driven: any builder exported by the flat op
namespace (``repro.core.ops``) is available as a context method, and an
op is rejected exactly when the registry marks it graph-only (its kernel
blocks on simulated runtime events — queues, datasets, tile I/O — or
manages Session-owned resources). There is no hand-maintained whitelist.
"""

from __future__ import annotations

import inspect
from typing import Any, Optional, Sequence

import numpy as np

from repro import dtypes
from repro.core.graph import Graph, Operation
from repro.core.kernels.registry import (
    KernelContext,
    ResourceManager,
    get_kernel,
    is_graph_only,
)
from repro.core.tensor import Tensor
from repro.errors import InvalidArgumentError, UnimplementedError

__all__ = ["EagerContext", "evaluate"]


def evaluate(fetches: Sequence[Any], feeds: dict, ctx: KernelContext) -> list:
    """Run graph nodes immediately through the kernel registry.

    This is the direct interpreter shared by :class:`EagerContext` and
    ``repro.function``'s run-eagerly mode: no Session, no discrete-event
    simulation, no cost accounting — each reachable op's kernel executes
    once, in dependency order, against ``ctx``.

    Args:
        fetches: Tensors and/or Operations to evaluate.
        feeds: tensor name -> value, consumed by Placeholder kernels.
        ctx: the kernel context (resources, seed) to execute against.

    Returns:
        One runtime value per fetched Tensor (Operations contribute
        ordering only).
    """
    values: dict[Operation, list] = {}
    roots = [f.op if isinstance(f, Tensor) else f for f in fetches]

    # Iterative post-order walk over data and control edges.
    stack: list[tuple[Operation, bool]] = [(op, False) for op in reversed(roots)]
    while stack:
        op, expanded = stack.pop()
        if op in values:
            continue
        if not expanded:
            stack.append((op, True))
            for dep in op.control_inputs:
                if dep not in values:
                    stack.append((dep, False))
            for tensor in op.inputs:
                if tensor.op not in values:
                    stack.append((tensor.op, False))
            continue
        kernel = get_kernel(op.type)
        if is_graph_only(op.type) or inspect.isgeneratorfunction(kernel):
            raise UnimplementedError(
                f"{op.type} requires graph mode (its kernel depends on the "
                f"simulated runtime — queues, datasets and tile I/O run "
                f"under a Session)"
            )
        inputs = [values[t.op][t.value_index] for t in op.inputs]
        result = kernel(op, inputs, ctx)
        if not isinstance(result, tuple):
            raise UnimplementedError(
                f"{op.type} kernel did not return eagerly; graph mode only"
            )
        outputs, _cost = result
        values[op] = list(outputs)

    out = []
    for fetch in fetches:
        if isinstance(fetch, Tensor):
            out.append(values[fetch.op][fetch.value_index])
    return out


class EagerContext:
    """Executes ops immediately, holding variable state imperatively.

    Every flat-namespace op builder (``repro.core.ops.__all__``) is
    exposed as a method: the call is recorded into a throwaway graph via
    the ordinary builder — exactly what the ``@repro.function`` tracer
    would record — and evaluated on the spot through the kernel registry.
    NumPy array arguments become placeholder feeds, so user arrays are
    never mutated or frozen.
    """

    def __init__(self, seed: Optional[int] = None):
        self._resources = ResourceManager(name="eager")
        self._seed = seed
        self._op_counter = 0

    # -- core execution --------------------------------------------------------
    def _kernel_ctx(self, feeds: Optional[dict] = None) -> KernelContext:
        return KernelContext(
            symbolic=False,
            feeds=feeds or {},
            resources=self._resources,
            graph_seed=self._seed,
        )

    def _lift(self, value, graph: Graph, feeds: dict):
        """Stage a concrete array as a placeholder + feed in ``graph``."""
        from repro.core.ops import array_ops

        arr = np.asarray(value)
        self._op_counter += 1
        ph = array_ops.placeholder(
            arr.dtype, shape=arr.shape, name=f"eager_input_{self._op_counter}",
            graph=graph,
        )
        feeds[ph.name] = arr
        return ph

    def _evaluate_built(self, built, feeds: dict):
        """Evaluate whatever a builder returned (Tensor(s) or Operation)."""
        if isinstance(built, Tensor):
            return evaluate([built], feeds, self._kernel_ctx(feeds))[0]
        if isinstance(built, Operation):
            if built.outputs:
                outs = evaluate(list(built.outputs), feeds, self._kernel_ctx(feeds))
                return outs[0] if len(outs) == 1 else outs
            evaluate([built], feeds, self._kernel_ctx(feeds))
            return None
        if isinstance(built, (list, tuple)) and built and all(
            isinstance(t, Tensor) for t in built
        ):
            outs = evaluate(list(built), feeds, self._kernel_ctx(feeds))
            return type(built)(outs) if isinstance(built, tuple) else outs
        raise UnimplementedError(
            f"builder returned {type(built).__name__}; stateful graph "
            f"objects (variables, queues, datasets) are graph-mode only — "
            f"use the context's imperative variable API instead"
        )

    def __getattr__(self, name: str):
        # Resolved lazily to avoid import cycles during package init.
        from repro.core import ops as flat_ops

        if name.startswith("_") or name not in getattr(flat_ops, "__all__", ()):
            raise AttributeError(
                f"EagerContext has no op {name!r} (not in the flat op "
                f"namespace)"
            )
        builder = getattr(flat_ops, name)

        def run_eagerly(*args, **kwargs):
            graph = Graph(seed=self._seed)
            feeds: dict = {}

            def lift(v):
                if isinstance(v, (np.ndarray, np.generic)):
                    return self._lift(v, graph, feeds)
                if isinstance(v, (list, tuple)) and any(
                    isinstance(e, (np.ndarray, np.generic)) for e in v
                ):
                    # Multi-tensor arguments (concat/stack/add_n lists):
                    # lift each element so no caller array is ever baked
                    # into a frozen constant.
                    return type(v)(lift(e) for e in v)
                return v

            with graph.as_default():
                built = builder(
                    *[lift(a) for a in args],
                    **{k: lift(v) for k, v in kwargs.items()},
                )
            return self._evaluate_built(built, feeds)

        run_eagerly.__name__ = name
        run_eagerly.__doc__ = builder.__doc__
        return run_eagerly

    def execute(self, op_type: str, inputs: Sequence[Any] = (),
                attrs: Optional[dict] = None, output_dtypes=None):
        """Run one raw op type immediately; returns its output value(s).

        Generic escape hatch for op types without a flat-namespace
        builder. The node is created in a throwaway graph exactly as a
        tracer would record it, then evaluated through the registry.
        """
        if is_graph_only(op_type):
            raise UnimplementedError(
                f"{op_type} requires graph mode (queues, datasets and tile "
                f"I/O depend on the simulated runtime)"
            )
        arrays = [np.asarray(v) for v in inputs]
        if output_dtypes is None:
            output_dtypes = [arrays[0].dtype if arrays else np.float32]
        graph = Graph(seed=self._seed)
        feeds: dict = {}
        with graph.as_default():
            placeholders = [self._lift(arr, graph, feeds) for arr in arrays]
            op = graph.create_op(
                op_type,
                inputs=placeholders,
                output_specs=[
                    (dtypes.as_dtype(dt), None) for dt in output_dtypes
                ],
                attrs=attrs or {},
            )
        outputs = evaluate(list(op.outputs), feeds, self._kernel_ctx(feeds))
        if len(outputs) == 1:
            return outputs[0]
        return outputs

    # -- convenience wrappers ----------------------------------------------------
    def constant(self, value, dtype=None):
        arr = np.asarray(value)
        if dtype is not None:
            arr = arr.astype(dtypes.as_dtype(dtype).np_dtype)
        return arr

    def fft(self, x):
        return self.__getattr__("fft")(np.asarray(x, dtype=np.complex128))

    def ifft(self, x):
        return self.__getattr__("ifft")(np.asarray(x, dtype=np.complex128))

    # -- imperative variables ------------------------------------------------------
    def variable(self, initial_value, name: Optional[str] = None) -> str:
        """Create a named mutable value; returns its handle (the name)."""
        name = name or f"eager_var_{self._op_counter}"
        self._op_counter += 1
        if name in self._resources.variables:
            raise InvalidArgumentError(f"Variable {name!r} already exists")
        self._resources.variables[name] = np.asarray(initial_value).copy()
        return name

    def read(self, handle: str):
        try:
            return self._resources.variables[handle]
        except KeyError:
            raise InvalidArgumentError(f"No variable {handle!r}") from None

    def assign(self, handle: str, value) -> None:
        self.read(handle)  # existence check
        self._resources.variables[handle] = np.asarray(value).copy()

    def assign_add(self, handle: str, delta) -> None:
        self._resources.variables[handle] = self.read(handle) + np.asarray(delta)
