"""Performance accounting: flop conventions, calibration provenance, reports."""

from repro.perf.calibration import PAPER_TARGETS, paper_target
from repro.perf.metrics import (
    bandwidth_mbs,
    cg_flops,
    fft_flops,
    matmul_flops,
    scaling_factor,
)
from repro.perf.reporting import format_table, ratio_to_paper

__all__ = [
    "matmul_flops",
    "cg_flops",
    "fft_flops",
    "bandwidth_mbs",
    "scaling_factor",
    "PAPER_TARGETS",
    "paper_target",
    "format_table",
    "ratio_to_paper",
]
