"""Flop-count conventions and derived metrics, exactly as the paper defines.

* Matmul: ``2N^3 - N^2`` (Section VI-B).
* CG: ``iterations * 2 * N^2`` — "500 is the number of iterations we run
  per test and N^2 belongs to the run time dominating matrix vector
  multiplication" (Section VI-C).
* FFT: ``5 N log2 N`` (Section VI-D).
* Bandwidth is reported in MB/s with MB = 2**20 bytes (Fig. 7).
"""

from __future__ import annotations

import math

from repro.errors import InvalidArgumentError

__all__ = ["matmul_flops", "cg_flops", "fft_flops", "bandwidth_mbs",
           "gflops", "scaling_factor"]

MB = 1024 * 1024


def matmul_flops(n: int) -> float:
    """Flop count of an N x N matrix multiplication (paper convention)."""
    if n < 1:
        raise InvalidArgumentError(f"n must be positive, got {n}")
    return 2.0 * float(n) ** 3 - float(n) ** 2


def cg_flops(n: int, iterations: int = 500) -> float:
    """Flop count of a CG run (paper convention: matvec-dominated)."""
    if n < 1 or iterations < 1:
        raise InvalidArgumentError("n and iterations must be positive")
    return float(iterations) * 2.0 * float(n) ** 2


def fft_flops(n: int) -> float:
    """Flop count of a length-N FFT (Cooley-Tukey operation count)."""
    if n < 2:
        raise InvalidArgumentError(f"n must be >= 2, got {n}")
    return 5.0 * float(n) * math.log2(n)


def gflops(flops: float, seconds: float) -> float:
    if seconds <= 0:
        raise InvalidArgumentError(f"seconds must be positive, got {seconds}")
    return flops / seconds / 1e9


def bandwidth_mbs(nbytes: float, seconds: float) -> float:
    if seconds <= 0:
        raise InvalidArgumentError(f"seconds must be positive, got {seconds}")
    return nbytes / seconds / MB


def scaling_factor(perf_before: float, perf_after: float) -> float:
    """Speedup when scaling resources, e.g. Gflops at 4 GPUs / at 2 GPUs."""
    if perf_before <= 0:
        raise InvalidArgumentError("perf_before must be positive")
    return perf_after / perf_before
