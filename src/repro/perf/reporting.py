"""Plain-text tables and paper-vs-measured comparisons."""

from __future__ import annotations

from typing import Sequence


from repro.perf.calibration import paper_target

__all__ = ["format_table", "ratio_to_paper", "comparison_row"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def ratio_to_paper(key: str, measured: float) -> float:
    """measured / paper for the named target."""
    return measured / paper_target(key).value


def comparison_row(key: str, measured: float) -> list:
    """[key, paper value, measured, ratio, source] row for report tables."""
    target = paper_target(key)
    flag = "~" if target.approx else ""
    return [
        key,
        f"{flag}{_fmt(target.value)} {target.unit}",
        f"{_fmt(measured)} {target.unit}",
        f"{measured / target.value:.2f}x",
    ]
