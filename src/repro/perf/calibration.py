"""Calibration provenance: every paper number the model is pinned against.

The simulator's constants (GPU efficiencies, link rates, staging paths,
serialization throughput) live with their hardware models in
``repro.simnet``; this module records the *measurements from the paper*
they were calibrated against, so every benchmark can print a
paper-vs-measured comparison and EXPERIMENTS.md can be regenerated.

Target values were read off the paper's text where stated numerically and
off the figures where only bars/curves are given (marked ``approx=True``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotFoundError

__all__ = ["PaperTarget", "PAPER_TARGETS", "paper_target"]


@dataclass(frozen=True)
class PaperTarget:
    """One number reported by the paper."""

    key: str
    value: float
    unit: str
    source: str  # where in the paper
    approx: bool = False  # read off a figure rather than stated in text


_T = PaperTarget

PAPER_TARGETS: dict[str, PaperTarget] = {t.key: t for t in [
    # ---- Fig. 7 / Section VI-A: STREAM ---------------------------------
    _T("stream/tegner-cpu/rdma/128MB", 6000, "MB/s",
       "VI-A: 'we record peak bandwidth of over 6 GB/s on Tegner when "
       "tensors are placed in CPU host memory'"),
    _T("stream/tegner/theoretical", 12000, "MB/s",
       "VI-A: 'The theoretical bandwidth on Tegner is 12 GB/s'"),
    _T("stream/tegner-gpu/rdma/128MB", 1300, "MB/s",
       "VI-A: 'bandwidth saturates at approximately 1300 MB/s on Tegner "
       "where tensors are hosted on K420 GPUs'"),
    _T("stream/kebnekaise-gpu/rdma/128MB", 2300, "MB/s",
       "VI-A: 'bandwidth saturates at below 2300 MB/s where tensors are "
       "hosted on K80 GPUs'"),
    _T("stream/tegner-gpu/mpi/128MB", 318, "MB/s",
       "VI-A: 'approximately 318 MB/s on Tegner ... MPI is used'"),
    _T("stream/kebnekaise-gpu/mpi/128MB", 480, "MB/s",
       "VI-A: 'approximately 480 MB/s ... on Kebnekaise'"),
    _T("stream/tegner-gpu/grpc/128MB", 110, "MB/s",
       "VI-A: 'gRPC gives the lowest bandwidth on Tegner ... resolved to "
       "communicate through Ethernet' (bar read off Fig. 7)", approx=True),
    # ---- Fig. 8 / Section VI-B: tiled matmul ---------------------------
    _T("matmul/tegner-k420/32768/scaling-2to4", 2.0, "x",
       "VI-B: 'approximately 2x increase in performance when increasing "
       "the number of GPUs from two to four with K420 GPUs ... 32768'"),
    _T("matmul/tegner-k420/32768/scaling-4to8", 2.0, "x",
       "VI-B: 'similar performance improvement for this setting when "
       "increasing the number of GPUs in use from four to eight'"),
    _T("matmul/tegner-k80/65536/scaling-2to4", 1.8, "x",
       "VI-B: 'roughly 1.8x improvement when scaling from two to four "
       "GPUs with problem size 65536'"),
    _T("matmul/kebnekaise-k80/32768/scaling-2to4", 1.4, "x",
       "VI-B: 'scaling of 1.4x when scaling from two to four GPUs'"),
    _T("matmul/kebnekaise-k80/32768/peak-16gpu", 2478, "Gflops/s",
       "VI-B: 'peak performance of 2478 Gflops/s when running on 16 K80 "
       "GPUs for problem size 32768'"),
    # ---- Fig. 10 / Section VI-C: CG ------------------------------------
    _T("cg/kebnekaise-k80/32768/scaling-2to4", 1.6, "x",
       "VI-C: 'a scaling of 1.6x in performance when increasing from two "
       "to four K80 GPUs on Kebnekaise with problem size 32768'"),
    _T("cg/kebnekaise-k80/32768/scaling-4to8", 1.3, "x",
       "VI-C: 'scaling drops to 1.3x, which is consistent with the "
       "expected behaviour of strong scaling'"),
    _T("cg/kebnekaise-k80/65536/scaling-8to16", 1.36, "x",
       "VI-C: 'improvement of 1.36x when scaling from eight to 16 K80 GPUs'"),
    _T("cg/kebnekaise-v100/32768/scaling-2to4", 1.26, "x",
       "VI-C: 'V100 nodes ... give 1.26x improvement ... from two to four'"),
    _T("cg/kebnekaise-v100/32768/scaling-4to8", 1.16, "x",
       "VI-C: 'from four to eight improvement drops to 1.16x'"),
    _T("cg/tegner-k80/32768/scaling-2to4", 1.74, "x",
       "VI-C: 'approximately 1.74x improvement ... from two to four K80 "
       "GPUs with problem size 32768'"),
    _T("cg/kebnekaise-v100/8gpu-gflops", 300, "Gflops/s",
       "VI-C: 'our CG solver, running on eight V100 GPUs gave over 300 "
       "Gflops/s'"),
    # ---- Fig. 11 / Section VI-D: FFT -----------------------------------
    _T("fft/tegner/scaling-2to4", 1.7, "x",
       "VI-D: 'approximately 1.6x to 1.8x increase in performance' from "
       "2 to 4 GPUs (midpoint)"),
    _T("fft/tegner-k80/peak-gflops", 32, "Gflops/s",
       "Fig. 11: K80 curve tops out at roughly 30-35 Gflops/s", approx=True),
    # ---- Related-work anchors (Section VI-C) ---------------------------
    _T("cg/starpu-3gpu-gflops", 30, "Gflops/s",
       "VI-C: StarPU task-based CG 'close to 30 Gflops/s on three GPUs'"),
]}


def paper_target(key: str) -> PaperTarget:
    """Look up a paper measurement by key."""
    try:
        return PAPER_TARGETS[key]
    except KeyError:
        raise NotFoundError(
            f"No paper target {key!r}; known keys: {sorted(PAPER_TARGETS)[:5]}..."
        ) from None
