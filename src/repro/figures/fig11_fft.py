"""Fig. 11 — distributed FFT strong scaling.

Paper configurations: one merger plus 2/4/8 GPUs; Tegner K420 transforms
N = 2^29 in 64 tiles, Tegner K80 transforms N = 2^31 in 128 tiles. The
metric is Gflops/s measured to the point all tiles are collected by the
merger (the serial Python merge is excluded, as the paper explains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.fft import FFTResult, run_fft
from repro.errors import ResourceExhaustedError
from repro.perf.reporting import comparison_row, format_table

__all__ = ["run_fig11", "format_fig11", "paper_comparison", "SWEEP"]

SWEEP = {
    "tegner-k420": dict(n=1 << 29, tiles=64, gpus=(2, 4, 8)),
    "tegner-k80": dict(n=1 << 31, tiles=128, gpus=(2, 4, 8)),
}


@dataclass
class Fig11Point:
    system: str
    n: int
    gpus: int
    result: Optional[FFTResult]


def run_fig11(quick: bool = True) -> list[Fig11Point]:
    points = []
    for system, params in SWEEP.items():
        for gpus in params["gpus"]:
            try:
                result = run_fft(
                    system=system,
                    n=params["n"],
                    num_tiles=params["tiles"],
                    num_gpus=gpus,
                    shape_only=True,
                )
            except ResourceExhaustedError:
                result = None
            points.append(Fig11Point(system, params["n"], gpus, result))
    return points


def format_fig11(points: list[Fig11Point]) -> str:
    headers = ["System", "N", "Mergers+GPUs", "Gflops/s (collect)",
               "collect [s]", "merge [s]"]
    rows = []
    for p in points:
        if p.result is None:
            rows.append([p.system, p.n, f"1+{p.gpus}", "OOM", "-", "-"])
        else:
            rows.append([
                p.system, p.n, f"1+{p.gpus}", p.result.gflops,
                p.result.collect_seconds, p.result.merge_seconds,
            ])
    return format_table(headers, rows, title="Fig. 11 — FFT")


def _gflops(points, system, gpus) -> Optional[float]:
    for p in points:
        if (p.system, p.gpus) == (system, gpus) and p.result is not None:
            return p.result.gflops
    return None


def paper_comparison(points: list[Fig11Point]) -> str:
    rows = []
    for system in SWEEP:
        lo, hi = _gflops(points, system, 2), _gflops(points, system, 4)
        if lo is not None and hi is not None:
            rows.append(comparison_row("fft/tegner/scaling-2to4", hi / lo))
    peak = _gflops(points, "tegner-k80", 8)
    if peak is not None:
        rows.append(comparison_row("fft/tegner-k80/peak-gflops", peak))
    return format_table(["target", "paper", "measured", "ratio"], rows,
                        title="Fig. 11 — paper vs measured")


def main() -> None:
    points = run_fig11()
    print(format_fig11(points))
    print()
    print(paper_comparison(points))


if __name__ == "__main__":
    main()
