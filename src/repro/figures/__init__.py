"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes ``run_*`` (the sweep) and ``format_*`` (the table the
paper's figure plots), plus a ``main()`` so it can run standalone::

    python -m repro.figures.fig7_stream
    python -m repro.figures.fig8_matmul --full
    python -m repro.figures.fig10_cg
    python -m repro.figures.fig11_fft
    python -m repro.figures.table1_nodes --topology
"""

__all__ = [
    "fig7_stream",
    "fig8_matmul",
    "fig10_cg",
    "fig11_fft",
    "table1_nodes",
]
