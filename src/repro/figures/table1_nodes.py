"""Table I — TensorFlow instances per node, and the Fig. 9 node topology.

Regenerates the paper's deployment table from the machine catalogs and
the Slurm resolver (the numbers are *derived* from the models: GPU count
per node, memory per engine, one engine per instance), and renders the
Kebnekaise node topology the paper uses to explain its scaling anomaly.
"""

from __future__ import annotations

from repro.perf.reporting import format_table
from repro.simnet.events import Environment
from repro.simnet.machines import NODE_TYPES, kebnekaise, tegner
from repro.slurm.cluster_resolver import SlurmClusterResolver
from repro.slurm.scontrol import Scontrol
from repro.slurm.workload_manager import SlurmWorkloadManager

__all__ = ["run_table1", "format_table1", "topology_diagram"]

_LABELS = {
    "tegner-k420": "Tegner K420",
    "tegner-k80": "Tegner K80",
    "kebnekaise-k80": "Kebnekaise K80",
    "kebnekaise-v100": "Kebnekaise V100",
}

_FACTORIES = {
    "tegner-k420": lambda env: tegner(env, k420_nodes=1),
    "tegner-k80": lambda env: tegner(env, k80_nodes=1),
    "kebnekaise-k80": lambda env: kebnekaise(env, k80_nodes=1),
    "kebnekaise-v100": lambda env: kebnekaise(env, v100_nodes=1),
}


def run_table1() -> list[dict]:
    """Derive Table I per node type by resolving a 1-node allocation."""
    rows = []
    for node_type, label in _LABELS.items():
        env = Environment()
        machine = _FACTORIES[node_type](env)
        node = next(iter(machine.nodes.values()))
        instances = NODE_TYPES[node_type]["instances"]
        slurm = SlurmWorkloadManager(machine)
        job = slurm.submit(num_nodes=1, tasks_per_node=instances)
        resolver = SlurmClusterResolver(
            jobs={"worker": instances},
            environ=job.environment(),
            scontrol=Scontrol(slurm),
        )
        masks = resolver.gpu_allocation()
        gpus_per_instance = len(masks[("worker", 0)])
        mem = node.gpus[0].model.mem_capacity // 1024**3
        rows.append({
            "node_type": label,
            "gpu_memory_gb": mem,
            "gpus_per_node": node.num_gpus,
            "instances": instances,
            "gpus_per_instance": gpus_per_instance,
        })
    return rows


def format_table1(rows: list[dict]) -> str:
    headers = ["Type of Node", "GPU Memory", "GPUs/node",
               "No. processes per node", "GPUs exposed/process"]
    table_rows = [
        [
            r["node_type"],
            f"{r['gpu_memory_gb']}GB",
            r["gpus_per_node"],
            r["instances"],
            r["gpus_per_instance"],
        ]
        for r in rows
    ]
    return format_table(headers, table_rows,
                        title="Table I — TF instances per node type")


def topology_diagram() -> str:
    """ASCII rendering of a Kebnekaise K80 node (paper Fig. 9)."""
    env = Environment()
    machine = kebnekaise(env, k80_nodes=1)
    node = machine.node("b-cn0001")
    island = {0: [], 1: []}
    for gpu in node.gpus:
        island[gpu.numa_island].append(f"GK210({gpu.index})")
    lines = [
        "Kebnekaise K80 node (paper Fig. 9)",
        "",
        "  NUMA island 0                NUMA island 1",
        "  +--------------------+       +--------------------+",
        f"  | {island[0][0]:<8} {island[0][1]:<8} |  QPI  | {island[1][0]:<8} {island[1][1]:<8} |",
        "  |   (PCI-E)          |<----->|   (PCI-E)          |",
        f"  | NIC: {node.machine.fabric.name:<13} |       |                    |",
        "  | + other I/O        |       |                    |",
        "  +--------------------+       +--------------------+",
        "",
        "  All I/O and network traffic funnels through island 0; GPUs on",
        "  island 1 cross the inter-socket link, and four co-located TF",
        "  instances share the single HCA.",
    ]
    return "\n".join(lines)


def main() -> None:
    import sys

    print(format_table1(run_table1()))
    if "--topology" in sys.argv:
        print()
        print(topology_diagram())


if __name__ == "__main__":
    main()
