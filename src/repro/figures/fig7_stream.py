"""Fig. 7 — STREAM communication performance.

Sweeps the three transports (gRPC, MPI, RDMA verbs) over the paper's
three placements (Tegner GPU, Tegner CPU, Kebnekaise GPU) and transfer
sizes (2, 16, 128 MB), reporting MB/s like the paper's grouped bars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.stream import StreamResult, run_stream
from repro.perf.reporting import comparison_row, format_table

__all__ = ["run_fig7", "format_fig7", "paper_comparison", "PLATFORMS",
           "PROTOCOLS", "SIZES_MB"]

# (label, system, device) — the paper's three bar groups.
PLATFORMS = [
    ("Tegner GPU", "tegner-k420", "gpu"),
    ("Tegner CPU", "tegner-k420", "cpu"),
    ("Kebnekaise GPU", "kebnekaise-k80", "gpu"),
]
PROTOCOLS = [("gRPC", "grpc"), ("MPI", "grpc+mpi"), ("RDMA", "grpc+verbs")]
SIZES_MB = (2, 16, 128)


@dataclass
class Fig7Point:
    platform: str
    protocol: str
    size_mb: float
    result: StreamResult


def run_fig7(iterations: int = 25, sizes=SIZES_MB) -> list[Fig7Point]:
    """Run the full Fig. 7 sweep (27 bars)."""
    points = []
    for platform, system, device in PLATFORMS:
        for proto_label, protocol in PROTOCOLS:
            for size in sizes:
                result = run_stream(
                    system=system,
                    device=device,
                    size_mb=size,
                    protocol=protocol,
                    iterations=iterations,
                    shape_only=True,
                )
                points.append(Fig7Point(platform, proto_label, size, result))
    return points


def format_fig7(points: list[Fig7Point]) -> str:
    """The figure as a table: rows = platform x protocol, cols = sizes."""
    sizes = sorted({p.size_mb for p in points})
    headers = ["Platform", "Protocol"] + [f"{s:g} MB [MB/s]" for s in sizes]
    rows = []
    for platform, _sys, _dev in PLATFORMS:
        for proto_label, _proto in PROTOCOLS:
            row = [platform, proto_label]
            for size in sizes:
                match = [
                    p for p in points
                    if p.platform == platform and p.protocol == proto_label
                    and p.size_mb == size
                ]
                row.append(match[0].result.bandwidth_mbs if match else "-")
            rows.append(row)
    return format_table(headers, rows, title="Fig. 7 — STREAM bandwidth")


def paper_comparison(points: list[Fig7Point]) -> str:
    """Paper-vs-measured rows for the quantities the paper states."""
    def find(platform, protocol, size):
        for p in points:
            if (p.platform, p.protocol, p.size_mb) == (platform, protocol, size):
                return p.result.bandwidth_mbs
        return None

    keys = [
        ("stream/tegner-cpu/rdma/128MB", find("Tegner CPU", "RDMA", 128)),
        ("stream/tegner-gpu/rdma/128MB", find("Tegner GPU", "RDMA", 128)),
        ("stream/kebnekaise-gpu/rdma/128MB", find("Kebnekaise GPU", "RDMA", 128)),
        ("stream/tegner-gpu/mpi/128MB", find("Tegner GPU", "MPI", 128)),
        ("stream/kebnekaise-gpu/mpi/128MB", find("Kebnekaise GPU", "MPI", 128)),
        ("stream/tegner-gpu/grpc/128MB", find("Tegner GPU", "gRPC", 128)),
    ]
    rows = [comparison_row(key, value) for key, value in keys if value is not None]
    return format_table(["target", "paper", "measured", "ratio"], rows,
                        title="Fig. 7 — paper vs measured")


def main() -> None:
    points = run_fig7()
    print(format_fig7(points))
    print()
    print(paper_comparison(points))


if __name__ == "__main__":
    main()
