"""Fig. 10 — CG solver strong scaling.

Sweeps problem sizes 16384/32768/65536 over 2-8 GPUs (Tegner K80,
Kebnekaise V100) and 2-16 GPUs (Kebnekaise K80). Points whose row block
does not fit device memory come out as OOM — matching the paper's omitted
bars ("we do not report result for problem size 65536 x 65536 due to
insufficient memory").

The paper runs 500 iterations; the per-iteration time is constant, so the
driver defaults to a shorter loop and reports Gflops/s with the matching
flop count (identical up to warm-up noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.cg import CGResult, run_cg
from repro.errors import ResourceExhaustedError
from repro.perf.reporting import comparison_row, format_table

__all__ = ["run_fig10", "format_fig10", "paper_comparison", "SWEEP"]

SWEEP = {
    "tegner-k80": dict(sizes=(16384, 32768, 65536), gpus=(2, 4, 8)),
    "kebnekaise-k80": dict(sizes=(16384, 32768, 65536), gpus=(2, 4, 8, 16)),
    "kebnekaise-v100": dict(sizes=(16384, 32768, 65536), gpus=(2, 4, 8)),
}


@dataclass
class Fig10Point:
    system: str
    n: int
    gpus: int
    result: Optional[CGResult]  # None => OOM


def run_fig10(iterations: int = 40, quick: bool = True) -> list[Fig10Point]:
    points = []
    for system, params in SWEEP.items():
        for n in params["sizes"]:
            for gpus in params["gpus"]:
                if quick and n == 65536 and gpus < 8:
                    # Big blocks on few GPUs OOM anyway (see the paper);
                    # skip the costly setup in quick mode.
                    points.append(Fig10Point(system, n, gpus, None))
                    continue
                try:
                    result = run_cg(
                        system=system,
                        n=n,
                        num_gpus=gpus,
                        iterations=iterations,
                        shape_only=True,
                    )
                except ResourceExhaustedError:
                    result = None
                points.append(Fig10Point(system, n, gpus, result))
    return points


def format_fig10(points: list[Fig10Point]) -> str:
    headers = ["System", "N", "GPUs", "Gflops/s", "ms/iteration"]
    rows = []
    for p in points:
        if p.result is None:
            rows.append([p.system, p.n, p.gpus, "OOM", "-"])
        else:
            rows.append([
                p.system, p.n, p.gpus, p.result.gflops,
                p.result.seconds_per_iteration * 1e3,
            ])
    return format_table(headers, rows, title="Fig. 10 — CG solver")


def _gflops(points, system, n, gpus) -> Optional[float]:
    for p in points:
        if (p.system, p.n, p.gpus) == (system, n, gpus) and p.result is not None:
            return p.result.gflops
    return None


def paper_comparison(points: list[Fig10Point]) -> str:
    def scaling(system, n, g_lo, g_hi):
        lo, hi = _gflops(points, system, n, g_lo), _gflops(points, system, n, g_hi)
        return None if (lo is None or hi is None) else hi / lo

    pairs = [
        ("cg/tegner-k80/32768/scaling-2to4", scaling("tegner-k80", 32768, 2, 4)),
        ("cg/kebnekaise-k80/32768/scaling-2to4",
         scaling("kebnekaise-k80", 32768, 2, 4)),
        ("cg/kebnekaise-k80/32768/scaling-4to8",
         scaling("kebnekaise-k80", 32768, 4, 8)),
        ("cg/kebnekaise-k80/65536/scaling-8to16",
         scaling("kebnekaise-k80", 65536, 8, 16)),
        ("cg/kebnekaise-v100/32768/scaling-2to4",
         scaling("kebnekaise-v100", 32768, 2, 4)),
        ("cg/kebnekaise-v100/32768/scaling-4to8",
         scaling("kebnekaise-v100", 32768, 4, 8)),
        ("cg/kebnekaise-v100/8gpu-gflops",
         _gflops(points, "kebnekaise-v100", 32768, 8)),
    ]
    rows = [comparison_row(k, v) for k, v in pairs if v is not None]
    return format_table(["target", "paper", "measured", "ratio"], rows,
                        title="Fig. 10 — paper vs measured")


def main() -> None:
    points = run_fig10()
    print(format_fig10(points))
    print()
    print(paper_comparison(points))


if __name__ == "__main__":
    main()
