"""Fig. 8 — tiled matrix-multiplication strong scaling.

Sweeps the paper's configurations ("number of reducers + number of GPUs"
on the x-axis, two reducers throughout):

* Tegner K420, tile 4096², problem sizes 16384/32768/65536, 2-8 GPUs;
* Tegner K80, tile 8192², sizes 32768/65536, 2-8 GPUs;
* Kebnekaise K80, tile 8192², sizes 32768/65536, 2-16 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.matmul import MatmulResult, run_matmul
from repro.errors import ResourceExhaustedError
from repro.perf.reporting import comparison_row, format_table

__all__ = ["run_fig8", "format_fig8", "paper_comparison", "SWEEP"]

NUM_REDUCERS = 2

SWEEP = {
    "tegner-k420": dict(tile=4096, sizes=(16384, 32768, 65536), gpus=(2, 4, 8)),
    "tegner-k80": dict(tile=8192, sizes=(32768, 65536), gpus=(2, 4, 8)),
    "kebnekaise-k80": dict(tile=8192, sizes=(32768, 65536), gpus=(2, 4, 8, 16)),
}

# The 65536 problem at tile 4096 means 4096 tile products; it is the one
# slow sweep point, so quick mode (used by the benches) drops it.
QUICK_SKIP = {("tegner-k420", 65536)}


@dataclass
class Fig8Point:
    system: str
    n: int
    gpus: int
    result: Optional[MatmulResult]  # None => OOM (paper omits the bar)


def run_fig8(quick: bool = True) -> list[Fig8Point]:
    points = []
    for system, params in SWEEP.items():
        for n in params["sizes"]:
            if quick and (system, n) in QUICK_SKIP:
                continue
            for gpus in params["gpus"]:
                try:
                    result = run_matmul(
                        system=system,
                        n=n,
                        tile=params["tile"],
                        num_gpus=gpus,
                        num_reducers=NUM_REDUCERS,
                        shape_only=True,
                    )
                except ResourceExhaustedError:
                    result = None
                points.append(Fig8Point(system, n, gpus, result))
    return points


def format_fig8(points: list[Fig8Point]) -> str:
    headers = ["System", "N", "Reducers+GPUs", "Gflops/s", "Elapsed [s]"]
    rows = []
    for p in points:
        if p.result is None:
            rows.append([p.system, p.n, f"{NUM_REDUCERS}+{p.gpus}", "OOM", "-"])
        else:
            rows.append([
                p.system, p.n, f"{NUM_REDUCERS}+{p.gpus}",
                p.result.gflops, p.result.elapsed,
            ])
    return format_table(headers, rows, title="Fig. 8 — tiled matmul")


def _gflops(points, system, n, gpus) -> Optional[float]:
    for p in points:
        if (p.system, p.n, p.gpus) == (system, n, gpus) and p.result is not None:
            return p.result.gflops
    return None


def paper_comparison(points: list[Fig8Point]) -> str:
    rows = []

    def scaling(system, n, g_lo, g_hi):
        lo, hi = _gflops(points, system, n, g_lo), _gflops(points, system, n, g_hi)
        return None if (lo is None or hi is None) else hi / lo

    pairs = [
        ("matmul/tegner-k420/32768/scaling-2to4",
         scaling("tegner-k420", 32768, 2, 4)),
        ("matmul/tegner-k420/32768/scaling-4to8",
         scaling("tegner-k420", 32768, 4, 8)),
        ("matmul/tegner-k80/65536/scaling-2to4",
         scaling("tegner-k80", 65536, 2, 4)),
        ("matmul/kebnekaise-k80/32768/scaling-2to4",
         scaling("kebnekaise-k80", 32768, 2, 4)),
        ("matmul/kebnekaise-k80/32768/peak-16gpu",
         _gflops(points, "kebnekaise-k80", 32768, 16)),
    ]
    for key, value in pairs:
        if value is not None:
            rows.append(comparison_row(key, value))
    return format_table(["target", "paper", "measured", "ratio"], rows,
                        title="Fig. 8 — paper vs measured")


def main(quick: bool = True) -> None:
    points = run_fig8(quick=quick)
    print(format_fig8(points))
    print()
    print(paper_comparison(points))


if __name__ == "__main__":
    import sys

    main(quick="--full" not in sys.argv)
