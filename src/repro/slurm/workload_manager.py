"""A simulated Slurm controller.

Manages partitions of a simulated machine's nodes, grants allocations,
and synthesizes the standard ``SLURM_*`` job environment (including the
run-length-encoded ``SLURM_TASKS_PER_NODE`` format) that the cluster
resolver consumes. Task placement follows Slurm's default *block/plane*
distribution, which the paper's resolver supports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from typing import Optional, Sequence

from repro.errors import InvalidArgumentError, ResourceExhaustedError
from repro.slurm.hostlist import compress_hostlist, expand_hostlist

__all__ = ["SlurmWorkloadManager", "SlurmJob", "encode_tasks_per_node", "decode_tasks_per_node"]


def encode_tasks_per_node(counts: Sequence[int]) -> str:
    """Slurm's RLE format: ``[2, 2, 2, 1]`` → ``"2(x3),1"``."""
    parts = []
    for count, run in itertools.groupby(counts):
        length = len(list(run))
        if length == 1:
            parts.append(str(count))
        else:
            parts.append(f"{count}(x{length})")
    return ",".join(parts)


def decode_tasks_per_node(text: str) -> list[int]:
    """Inverse of :func:`encode_tasks_per_node`."""
    counts: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "(x" in part:
            count_text, _, rep_text = part.partition("(x")
            if not rep_text.endswith(")"):
                raise InvalidArgumentError(f"Bad tasks-per-node item {part!r}")
            counts.extend([int(count_text)] * int(rep_text[:-1]))
        else:
            counts.append(int(part))
    return counts


@dataclass
class SlurmJob:
    """One granted allocation."""

    job_id: int
    partition: str
    nodes: list[str]
    tasks_per_node: list[int]
    gpus_per_node: int

    @property
    def ntasks(self) -> int:
        return sum(self.tasks_per_node)

    @property
    def nodelist(self) -> str:
        return compress_hostlist(self.nodes)

    def environment(self, procid: int = 0) -> dict[str, str]:
        """The ``SLURM_*`` environment a job step would see."""
        if not 0 <= procid < self.ntasks:
            raise InvalidArgumentError(
                f"procid {procid} outside [0, {self.ntasks})"
            )
        return {
            "SLURM_JOB_ID": str(self.job_id),
            "SLURM_JOB_PARTITION": self.partition,
            "SLURM_JOB_NODELIST": self.nodelist,
            "SLURM_JOB_NUM_NODES": str(len(self.nodes)),
            "SLURM_NNODES": str(len(self.nodes)),
            "SLURM_NTASKS": str(self.ntasks),
            "SLURM_TASKS_PER_NODE": encode_tasks_per_node(self.tasks_per_node),
            "SLURM_PROCID": str(procid),
            "SLURM_JOB_GPUS": ",".join(str(i) for i in range(self.gpus_per_node)),
        }

    def task_hosts(self) -> list[str]:
        """Host of each task index under block (plane) distribution."""
        hosts = []
        for node, count in zip(self.nodes, self.tasks_per_node):
            hosts.extend([node] * count)
        return hosts


class SlurmWorkloadManager:
    """Allocates nodes of a simulated machine to jobs."""

    def __init__(self, machine, partitions: Optional[dict[str, list[str]]] = None):
        self.machine = machine
        if partitions is None:
            partitions = {"main": machine.node_names()}
        for name, nodes in partitions.items():
            for node in nodes:
                machine.node(node)  # validates existence
        self.partitions = {name: list(nodes) for name, nodes in partitions.items()}
        self._busy: set[str] = set()
        self._jobs: dict[int, SlurmJob] = {}
        self._next_job_id = itertools.count(1000)

    # -- queries -----------------------------------------------------------------
    def idle_nodes(self, partition: str = "main") -> list[str]:
        nodes = self._partition(partition)
        return [n for n in nodes if n not in self._busy]

    def job(self, job_id: int) -> SlurmJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise InvalidArgumentError(f"Unknown job id {job_id}") from None

    def _partition(self, partition: str) -> list[str]:
        try:
            return self.partitions[partition]
        except KeyError:
            raise InvalidArgumentError(
                f"Unknown partition {partition!r} (have {sorted(self.partitions)})"
            ) from None

    # -- allocation ---------------------------------------------------------------
    def submit(
        self,
        num_nodes: Optional[int] = None,
        ntasks: Optional[int] = None,
        tasks_per_node: Optional[int] = None,
        partition: str = "main",
        nodelist: Optional[str] = None,
    ) -> SlurmJob:
        """Grant an allocation (immediate; no queueing delay is modelled)."""
        if nodelist is not None:
            nodes = expand_hostlist(nodelist)
            for node in nodes:
                if node not in self._partition(partition):
                    raise InvalidArgumentError(
                        f"Node {node!r} not in partition {partition!r}"
                    )
                if node in self._busy:
                    raise ResourceExhaustedError(f"Node {node!r} is busy")
        else:
            if num_nodes is None:
                if ntasks is None or tasks_per_node is None:
                    raise InvalidArgumentError(
                        "submit() needs num_nodes, nodelist, or "
                        "ntasks+tasks_per_node"
                    )
                num_nodes = -(-ntasks // tasks_per_node)  # ceil division
            idle = self.idle_nodes(partition)
            if len(idle) < num_nodes:
                raise ResourceExhaustedError(
                    f"Requested {num_nodes} nodes; only {len(idle)} idle in "
                    f"{partition!r}"
                )
            nodes = idle[:num_nodes]
        if tasks_per_node is None:
            if ntasks is None:
                tasks_per_node = 1
                ntasks = len(nodes)
            else:
                tasks_per_node = -(-ntasks // len(nodes))
        if ntasks is None:
            ntasks = tasks_per_node * len(nodes)
        # Block (plane) distribution: fill each node up to tasks_per_node.
        counts = []
        remaining = ntasks
        for _ in nodes:
            take = min(tasks_per_node, remaining)
            counts.append(take)
            remaining -= take
        if remaining > 0:
            raise InvalidArgumentError(
                f"{ntasks} tasks do not fit on {len(nodes)} nodes at "
                f"{tasks_per_node} tasks/node"
            )
        gpus = min(self.machine.node(n).num_gpus for n in nodes)
        job = SlurmJob(
            job_id=next(self._next_job_id),
            partition=partition,
            nodes=list(nodes),
            tasks_per_node=counts,
            gpus_per_node=gpus,
        )
        self._busy.update(nodes)
        self._jobs[job.job_id] = job
        return job

    def cancel(self, job_id: int) -> None:
        job = self.job(job_id)
        self._busy.difference_update(job.nodes)
        del self._jobs[job_id]
