"""The paper's Slurm cluster resolver (Section III).

Given a Slurm job environment and a requested job composition (e.g.
``{"ps": 1, "worker": 4}``), the resolver:

* expands the allocation's node list (via ``scontrol show hostnames``);
* lays tasks onto nodes following Slurm's plane distribution;
* assigns each task an address (``host:port``, incrementing the port for
  co-located tasks);
* computes each task's GPU exposure mask (``CUDA_VISIBLE_DEVICES``) so
  that multiple TensorFlow instances on a node get disjoint GPU engines —
  Table I's configurations.

``create_servers`` additionally boots the corresponding simulated
:class:`~repro.runtime.server.Server` objects, which is the piece real TF
leaves to ``tf.train.Server`` on each rank.
"""

from __future__ import annotations

from typing import Optional


from repro.errors import InvalidArgumentError, ResourceExhaustedError
from repro.runtime.clusterspec import ClusterSpec
from repro.runtime.server import Server, ServerConfig
from repro.slurm.scontrol import Scontrol
from repro.slurm.workload_manager import decode_tasks_per_node

__all__ = ["SlurmClusterResolver"]


class SlurmClusterResolver:
    """Builds a ClusterSpec from a Slurm allocation."""

    def __init__(
        self,
        jobs: dict[str, int],
        environ: dict[str, str],
        port_base: int = 8888,
        gpus_per_node: Optional[int] = None,
        gpus_per_task: Optional[int] = None,
        scontrol: Optional[Scontrol] = None,
        auto_set_gpu: bool = True,
    ):
        if not jobs:
            raise InvalidArgumentError("jobs must name at least one job")
        for name, count in jobs.items():
            if count < 1:
                raise InvalidArgumentError(f"Job {name!r} needs >= 1 task")
        self.jobs = dict(jobs)
        self.port_base = port_base
        self.auto_set_gpu = auto_set_gpu
        self._scontrol = scontrol or Scontrol()
        try:
            nodelist = environ["SLURM_JOB_NODELIST"]
            self._ntasks = int(environ["SLURM_NTASKS"])
            tasks_text = environ["SLURM_TASKS_PER_NODE"]
        except KeyError as exc:
            raise InvalidArgumentError(
                f"Not inside a Slurm allocation: missing {exc.args[0]}"
            ) from None
        self._hosts = self._scontrol.show_hostnames(nodelist).splitlines()
        self._tasks_per_node = decode_tasks_per_node(tasks_text)
        if len(self._tasks_per_node) == 1 and len(self._hosts) > 1:
            # Slurm may emit a single "2(x4)"-style entry already expanded
            # by decode; but a bare "2" for many nodes means homogeneous.
            self._tasks_per_node = self._tasks_per_node * len(self._hosts)
        if len(self._tasks_per_node) != len(self._hosts):
            raise InvalidArgumentError(
                f"{len(self._hosts)} hosts but tasks-per-node has "
                f"{len(self._tasks_per_node)} entries"
            )
        total = sum(self.jobs.values())
        if total > self._ntasks:
            raise ResourceExhaustedError(
                f"Requested {total} tasks across jobs {self.jobs} but the "
                f"allocation has SLURM_NTASKS={self._ntasks}"
            )
        if gpus_per_node is None:
            gpu_env = environ.get("SLURM_JOB_GPUS", "")
            gpus_per_node = len([g for g in gpu_env.split(",") if g != ""])
        self._gpus_per_node = gpus_per_node
        if gpus_per_task is None:
            max_tasks = max(self._tasks_per_node)
            gpus_per_task = (
                gpus_per_node // max_tasks if max_tasks and gpus_per_node else 0
            )
        self._gpus_per_task = gpus_per_task

    # -- task layout -------------------------------------------------------------
    def _task_slots(self) -> list[tuple[str, int]]:
        """(host, local_rank) of every global task, plane-distributed."""
        slots = []
        for host, count in zip(self._hosts, self._tasks_per_node):
            for local in range(count):
                slots.append((host, local))
        return slots

    def _assignments(self) -> list[tuple[str, int, str, int]]:
        """(job, task_index, host, local_rank) for every assigned task."""
        slots = self._task_slots()
        out = []
        cursor = 0
        for job in self.jobs:  # dict order: caller controls ps-first etc.
            for index in range(self.jobs[job]):
                host, local = slots[cursor]
                out.append((job, index, host, local))
                cursor += 1
        return out

    def cluster_spec(self) -> ClusterSpec:
        spec: dict[str, list[str]] = {job: [] for job in self.jobs}
        for job, _index, host, local in self._assignments():
            spec[job].append(f"{host}:{self.port_base + local}")
        return ClusterSpec(spec)

    def get_task_info(self, procid: int) -> tuple[str, int]:
        """(job_name, task_index) of the global Slurm rank ``procid``."""
        assignments = self._assignments()
        if not 0 <= procid < len(assignments):
            raise InvalidArgumentError(
                f"procid {procid} outside the {len(assignments)} assigned tasks"
            )
        job, index, _host, _local = assignments[procid]
        return job, index

    def gpu_allocation(self) -> dict[tuple[str, int], list[int]]:
        """Physical GPU ids exposed to each task (CUDA_VISIBLE_DEVICES)."""
        masks: dict[tuple[str, int], list[int]] = {}
        next_gpu: dict[str, int] = {}
        for job, index, host, _local in self._assignments():
            if not self.auto_set_gpu or self._gpus_per_task == 0:
                masks[(job, index)] = list(range(self._gpus_per_node))
                continue
            start = next_gpu.get(host, 0)
            end = start + self._gpus_per_task
            if end > self._gpus_per_node:
                raise ResourceExhaustedError(
                    f"Node {host} has {self._gpus_per_node} GPUs; cannot give "
                    f"{self._gpus_per_task} more to /job:{job}/task:{index}"
                )
            masks[(job, index)] = list(range(start, end))
            next_gpu[host] = end
        return masks

    # -- simulated-cluster integration ----------------------------------------
    def create_servers(
        self,
        machine,
        protocol: str = "grpc+verbs",
        gpu_memory_fraction: float = 1.0,
    ) -> dict[tuple[str, int], Server]:
        """Boot one simulated Server per task with its GPU mask applied."""
        spec = self.cluster_spec()
        masks = self.gpu_allocation()
        servers = {}
        for job in self.jobs:
            for index in range(self.jobs[job]):
                config = ServerConfig(
                    visible_gpus=masks[(job, index)],
                    gpu_memory_fraction=gpu_memory_fraction,
                )
                servers[(job, index)] = Server(
                    spec,
                    job_name=job,
                    task_index=index,
                    machine=machine,
                    protocol=protocol,
                    config=config,
                )
        return servers
