"""Slurm hostlist grammar: expansion and compression.

Slurm compresses node lists as ``t01n[01-03,05]``; tools (and the paper's
resolver, via ``scontrol show hostnames``) need the expanded form. Both
directions are implemented, preserving zero padding.
"""

from __future__ import annotations

import re
from itertools import groupby

from repro.errors import InvalidArgumentError

__all__ = ["expand_hostlist", "compress_hostlist"]

_BRACKET_RE = re.compile(r"^([^\[\]]*)\[([^\[\]]+)\]([^\[\]]*)$")
_TRAILING_NUM_RE = re.compile(r"^(.*?)(\d+)$")


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not inside brackets."""
    parts = []
    depth = 0
    current = []
    for char in text:
        if char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            if depth < 0:
                raise InvalidArgumentError(f"Unbalanced brackets in {text!r}")
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise InvalidArgumentError(f"Unbalanced brackets in {text!r}")
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def expand_hostlist(hostlist: str) -> list[str]:
    """Expand ``"t01n[01-03,05],gpu07"`` to the explicit host names."""
    if not hostlist or not hostlist.strip():
        return []
    hosts: list[str] = []
    for item in _split_top_level(hostlist):
        match = _BRACKET_RE.match(item)
        if match is None:
            if "[" in item or "]" in item:
                raise InvalidArgumentError(
                    f"Cannot parse hostlist item {item!r} "
                    f"(multiple bracket groups are not supported)"
                )
            hosts.append(item)
            continue
        prefix, body, suffix = match.groups()
        for piece in body.split(","):
            piece = piece.strip()
            if "-" in piece:
                lo_text, _, hi_text = piece.partition("-")
                if not lo_text.isdigit() or not hi_text.isdigit():
                    raise InvalidArgumentError(
                        f"Bad range {piece!r} in hostlist {hostlist!r}"
                    )
                width = len(lo_text)
                lo, hi = int(lo_text), int(hi_text)
                if hi < lo:
                    raise InvalidArgumentError(
                        f"Descending range {piece!r} in hostlist {hostlist!r}"
                    )
                for value in range(lo, hi + 1):
                    hosts.append(f"{prefix}{value:0{width}d}{suffix}")
            else:
                if not piece.isdigit():
                    raise InvalidArgumentError(
                        f"Bad index {piece!r} in hostlist {hostlist!r}"
                    )
                hosts.append(f"{prefix}{piece}{suffix}")
    return hosts


def compress_hostlist(hosts: list[str]) -> str:
    """Inverse of :func:`expand_hostlist` (stable for its outputs).

    Hosts sharing a prefix and numeric-suffix width are folded into one
    bracket group with ranges; everything else passes through verbatim.
    """
    if not hosts:
        return ""
    plain: list[str] = []
    # (prefix, width) -> list of numeric suffixes, in first-seen order.
    groups: dict[tuple[str, int], list[int]] = {}
    order: list[tuple[str, int]] = []
    for host in hosts:
        match = _TRAILING_NUM_RE.match(host)
        if match is None:
            plain.append(host)
            continue
        prefix, digits = match.groups()
        key = (prefix, len(digits))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(int(digits))
    parts: list[str] = []
    for key in order:
        prefix, width = key
        numbers = sorted(set(groups[key]))
        ranges: list[str] = []
        # Consecutive runs: group by value - position.
        for _, run in groupby(enumerate(numbers), key=lambda t: t[1] - t[0]):
            items = [v for _, v in run]
            if len(items) == 1:
                ranges.append(f"{items[0]:0{width}d}")
            else:
                ranges.append(f"{items[0]:0{width}d}-{items[-1]:0{width}d}")
        if len(numbers) == 1 and not ranges[0].count("-"):
            parts.append(f"{prefix}{ranges[0]}")
        else:
            parts.append(f"{prefix}[{','.join(ranges)}]")
    parts.extend(plain)
    return ",".join(parts)
