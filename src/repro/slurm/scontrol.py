"""``scontrol`` emulation.

The paper's resolver "reads a list of hosts through Slurm's scontrol
command"; this class reproduces the two subcommands it needs, returning
the same text format the real tool prints.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidArgumentError
from repro.slurm.hostlist import expand_hostlist
from repro.slurm.workload_manager import SlurmWorkloadManager

__all__ = ["Scontrol"]


class Scontrol:
    """Text-level frontend over the simulated workload manager."""

    def __init__(self, manager: Optional[SlurmWorkloadManager] = None):
        self._manager = manager

    def show_hostnames(self, nodelist: str) -> str:
        """``scontrol show hostnames <list>``: one expanded name per line."""
        return "\n".join(expand_hostlist(nodelist))

    def show_job(self, job_id: int) -> str:
        """``scontrol show job <id>``: the fields the resolver cares about."""
        if self._manager is None:
            raise InvalidArgumentError("show_job requires a workload manager")
        job = self._manager.job(job_id)
        lines = [
            f"JobId={job.job_id} JobName=repro",
            f"   Partition={job.partition} NodeList={job.nodelist}",
            f"   NumNodes={len(job.nodes)} NumTasks={job.ntasks}",
            f"   TasksPerNode={job.tasks_per_node}",
        ]
        return "\n".join(lines)

    def run(self, *argv: str) -> str:
        """Command-line style dispatch: ``run('show', 'hostnames', list)``."""
        if len(argv) >= 2 and argv[0] == "show" and argv[1] == "hostnames":
            if len(argv) != 3:
                raise InvalidArgumentError("usage: scontrol show hostnames <list>")
            return self.show_hostnames(argv[2])
        if len(argv) >= 2 and argv[0] == "show" and argv[1] == "job":
            if len(argv) != 3:
                raise InvalidArgumentError("usage: scontrol show job <id>")
            return self.show_job(int(argv[2]))
        raise InvalidArgumentError(f"Unsupported scontrol invocation: {argv}")
