"""Simulated Slurm workload manager and the paper's TF cluster resolver.

Section III of the paper contributes a ``tf.contrib.cluster_resolver``
extension that turns a Slurm allocation into a TensorFlow ClusterSpec and
exposes the right GPUs to co-located tasks. This package provides the
whole chain: hostlist grammar, a simulated Slurm controller that issues
allocations with the standard ``SLURM_*`` environment, an ``scontrol``
emulation, and the resolver itself.
"""

from repro.slurm.cluster_resolver import SlurmClusterResolver
from repro.slurm.hostlist import compress_hostlist, expand_hostlist
from repro.slurm.scontrol import Scontrol
from repro.slurm.workload_manager import SlurmJob, SlurmWorkloadManager

__all__ = [
    "expand_hostlist",
    "compress_hostlist",
    "SlurmWorkloadManager",
    "SlurmJob",
    "Scontrol",
    "SlurmClusterResolver",
]
