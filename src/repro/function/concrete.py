"""Concrete functions and the ``@repro.function`` decorator.

A :class:`TracedFunction` wraps a Python function. Each call signature
(argument dtypes + static shapes, or one pinned ``input_signature``)
is traced once into the function's graph; the resulting
:class:`ConcreteFunction` is cached and every later compatible call
dispatches through a lazily-created :class:`~repro.core.session.Session`
— so plan-time graph optimization, the session plan cache, RunMetadata
tracing and multi-job cluster placement all apply to code written in
plain imperative style.

Dispatch rules, in order:

1. **Inlining** — called while another trace is recording, or with
   symbolic :class:`~repro.core.tensor.Tensor` arguments during manual
   graph construction, the Python body runs directly and its ops land in
   the current default graph (no nested Session).
2. **Eager escape** — after ``run_functions_eagerly(True)``, calls
   evaluate immediately through the kernel registry (no simulator), the
   debugging workflow TF2 offers under the same name.
3. **Traced dispatch** — otherwise: look up / record the
   ConcreteFunction for the call signature and run it in the Session.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Optional

import numpy as np

from repro.core.graph import Graph
from repro.core.metadata import RunMetadata, RunOptions
from repro.core.session import Session, SessionConfig
from repro.core.tensor import Tensor
from repro.errors import InvalidArgumentError
from repro.function import tracing
from repro.function.tracing import TensorSpec, TraceResult

__all__ = [
    "ConcreteFunction",
    "TracedFunction",
    "function",
    "functions_run_eagerly",
    "run_functions_eagerly",
]

_RUN_EAGERLY = False


def run_functions_eagerly(enable: bool) -> None:
    """Globally force traced functions to execute eagerly (debugging)."""
    global _RUN_EAGERLY
    _RUN_EAGERLY = bool(enable)


def functions_run_eagerly() -> bool:
    return _RUN_EAGERLY


def _contains_symbolic(value: Any) -> bool:
    from repro.core.ops.state_ops import Variable

    if isinstance(value, (Tensor, Variable)):
        return True
    if isinstance(value, (list, tuple)):
        return any(_contains_symbolic(v) for v in value)
    if isinstance(value, dict):
        return any(_contains_symbolic(v) for v in value.values())
    return False


class ConcreteFunction:
    """One trace of a Python function, executable through a Session."""

    def __init__(self, parent: "TracedFunction", key, result: TraceResult):
        self._parent = parent
        self._key = key
        self._result = result
        self._initialized = not result.variables

    # -- introspection ------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._parent.graph

    @property
    def inputs(self) -> list[Tensor]:
        """The placeholder tensors, in argument order."""
        return list(self._result.placeholders)

    @property
    def structured_outputs(self):
        return tracing.pack_outputs(
            self._result.structure, self._result.output_tensors
        )

    @property
    def name(self) -> str:
        return self._result.scope.rstrip("/")

    def __repr__(self) -> str:
        return (
            f"<ConcreteFunction {self.name!r} "
            f"inputs={[t.name for t in self._result.placeholders]}>"
        )

    # -- execution -----------------------------------------------------------
    def __call__(self, *args, options: Optional[RunOptions] = None,
                 run_metadata: Optional[RunMetadata] = None, **kwargs):
        entries = self._parent._bind(args, kwargs)
        leaves = [v for _, v in entries if tracing.is_tensor_like(v)]
        return self.call_flat(leaves, options=options, run_metadata=run_metadata)

    def call_flat(self, leaf_values, options: Optional[RunOptions] = None,
                  run_metadata: Optional[RunMetadata] = None):
        """Run with one concrete value per placeholder, repacking outputs."""
        result = self._result
        if len(leaf_values) != len(result.placeholders):
            raise InvalidArgumentError(
                f"{self!r} expects {len(result.placeholders)} tensor "
                f"arguments, got {len(leaf_values)}"
            )
        sess = self._parent._ensure_session()
        if not self._initialized:
            init_ops = [v.initializer for v in result.variables]
            sess.run(init_ops if len(init_ops) > 1 else init_ops[0])
            self._initialized = True
        feed = {
            ph.name: np.asarray(value, dtype=ph.dtype.np_dtype)
            for ph, value in zip(result.placeholders, leaf_values)
        }
        fetches = list(result.output_tensors) + list(result.side_effect_ops)
        if not fetches:
            return tracing.pack_outputs(result.structure, [])
        values = sess.run(
            fetches, feed_dict=feed, options=options, run_metadata=run_metadata
        )
        if len(fetches) == 1:
            values = [values]
        if run_metadata is not None:
            self._parent._record_trace_stats(run_metadata)
        return tracing.pack_outputs(
            result.structure, values[: len(result.output_tensors)]
        )


class TracedFunction:
    """The callable produced by ``@repro.function``.

    All traces share one graph and one lazily-created Session, so
    variables created on the first trace persist across calls and the
    session's plan cache serves repeat signatures.
    """

    def __init__(
        self,
        python_function: Callable,
        input_signature=None,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        target=None,
        machine=None,
        env=None,
        config: Optional[SessionConfig] = None,
    ):
        self._python_function = python_function
        raw = name or getattr(python_function, "__name__", "") or "traced_fn"
        self._name = "".join(
            c if c.isalnum() or c == "_" else "_" for c in raw
        ) or "traced_fn"
        if input_signature is not None:
            input_signature = list(input_signature)
            for spec in input_signature:
                if not isinstance(spec, TensorSpec):
                    raise InvalidArgumentError(
                        f"input_signature entries must be TensorSpec, got "
                        f"{type(spec).__name__}"
                    )
        self._input_signature = input_signature
        self._seed = seed
        self._target = target
        self._machine = machine
        self._env = env
        self._config = config
        self._graph: Optional[Graph] = None
        self._session: Optional[Session] = None
        self._eager_context = None
        # inspect.signature is costly; computed once, reused on the
        # per-call dispatch hot path.
        self._py_signature = inspect.signature(python_function)
        self._concrete: dict = {}
        self._trace_count = 0
        self._cache_hits = 0
        self._cache_misses = 0
        functools.update_wrapper(self, python_function)

    # -- introspection ---------------------------------------------------------
    @property
    def python_function(self) -> Callable:
        return self._python_function

    @property
    def graph(self) -> Graph:
        if self._graph is None:
            self._graph = Graph(seed=self._seed)
        return self._graph

    @property
    def session(self) -> Optional[Session]:
        """The dispatch Session, once the first traced call created it."""
        return self._session

    @property
    def trace_count(self) -> int:
        """How many times the Python function has been recorded."""
        return self._trace_count

    @property
    def concrete_functions(self) -> list[ConcreteFunction]:
        return list(self._concrete.values())

    def cache_info(self) -> dict:
        """Trace-cache statistics for introspection and benchmarks."""
        return {
            "traces": self._trace_count,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._concrete),
        }

    def __repr__(self) -> str:
        return (
            f"<TracedFunction {self._name!r} traces={self._trace_count}>"
        )

    # -- internals ------------------------------------------------------------
    def _ensure_session(self) -> Session:
        if self._session is None:
            self._session = Session(
                target=self._target,
                graph=self.graph,
                config=self._config,
                machine=self._machine,
                env=self._env,
            )
        return self._session

    def _bind(self, args, kwargs):
        return tracing.bind_arguments(
            self._python_function, args, kwargs, signature=self._py_signature
        )

    def _record_trace_stats(self, metadata: RunMetadata) -> None:
        metadata.trace_cache_hits = self._cache_hits
        metadata.trace_cache_misses = self._cache_misses

    def _signature_key(self, entries) -> tuple:
        if self._input_signature is not None:
            leaves = [(n, v) for n, v in entries if tracing.is_tensor_like(v)]
            statics = [n for n, v in entries if not tracing.is_tensor_like(v)]
            if statics:
                raise InvalidArgumentError(
                    f"input_signature covers tensor arguments only; "
                    f"{statics} are not tensor-like"
                )
            if len(leaves) != len(self._input_signature):
                raise InvalidArgumentError(
                    f"{self._name} pins {len(self._input_signature)} "
                    f"arguments via input_signature, got {len(leaves)}"
                )
            for (pname, value), spec in zip(leaves, self._input_signature):
                if not spec.is_compatible_with(value):
                    raise InvalidArgumentError(
                        f"Argument {pname!r} is incompatible with "
                        f"input_signature spec {spec!r}"
                    )
            return ("signature",)
        return tuple(tracing.leaf_key(n, v) for n, v in entries)

    def _lookup_or_trace(self, args, kwargs, count_stats: bool):
        entries = self._bind(args, kwargs)
        key = self._signature_key(entries)
        concrete = self._concrete.get(key)
        if concrete is not None:
            if count_stats:
                self._cache_hits += 1
            return concrete, entries
        if count_stats:
            self._cache_misses += 1
        result = tracing.trace(
            self._python_function,
            self.graph,
            self._name,
            args,
            kwargs,
            entries=entries,
            specs=self._input_signature,
            owner=self,
            signature=self._py_signature,
        )
        self._trace_count += 1
        concrete = ConcreteFunction(self, key, result)
        self._concrete[key] = concrete
        return concrete, entries

    def _call_eagerly(self, args, kwargs, run_metadata=None):
        """Trace into a throwaway graph and interpret it immediately."""
        from repro import eager

        if self._eager_context is None:
            self._eager_context = eager.EagerContext(seed=self._seed)
        ctx = self._eager_context
        graph = Graph(seed=self._seed)
        entries = self._bind(args, kwargs)
        result = tracing.trace(
            self._python_function, graph, self._name, args, kwargs,
            entries=entries, specs=self._input_signature, owner=self,
            signature=self._py_signature,
        )
        leaves = [v for _, v in entries if tracing.is_tensor_like(v)]
        feeds = {
            ph.name: np.asarray(value, dtype=ph.dtype.np_dtype)
            for ph, value in zip(result.placeholders, leaves)
        }
        kernel_ctx = ctx._kernel_ctx(feeds)
        # Variable names are stable across eager re-traces (fresh graph,
        # same scope), so state persists in the context's resources and
        # initializers only run for genuinely new variables — matching
        # the traced mode's initialize-once semantics.
        init_ops = [
            v.initializer
            for v in result.variables
            if v.name not in ctx._resources.variables
        ]
        if init_ops:
            eager.evaluate(init_ops, feeds, kernel_ctx)
        fetches = list(result.output_tensors) + list(result.side_effect_ops)
        values = eager.evaluate(fetches, feeds, kernel_ctx)
        if run_metadata is not None:
            self._record_trace_stats(run_metadata)
        return tracing.pack_outputs(
            result.structure, values[: len(result.output_tensors)]
        )

    # -- the call --------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        """Dispatch one call (see the module docstring for the rules).

        ``options=``/``run_metadata=`` are reserved keywords forwarded to
        the Session run (so the wrapped function cannot use those
        parameter names itself). The inline path records no metadata —
        the *enclosing* trace's run carries it; the eager escape fills
        the trace-cache counters only (there is no simulated run).
        """
        options = kwargs.pop("options", None)
        run_metadata = kwargs.pop("run_metadata", None)
        if tracing.is_tracing() or _contains_symbolic(args) or _contains_symbolic(kwargs):
            # Inline: ops land in the graph currently under construction.
            return self._python_function(*args, **kwargs)
        if _RUN_EAGERLY:
            return self._call_eagerly(args, kwargs, run_metadata=run_metadata)
        concrete, entries = self._lookup_or_trace(args, kwargs, count_stats=True)
        if run_metadata is not None:
            self._record_trace_stats(run_metadata)
        leaves = [v for _, v in entries if tracing.is_tensor_like(v)]
        return concrete.call_flat(
            leaves, options=options, run_metadata=run_metadata
        )

    def get_concrete_function(self, *args, **kwargs) -> ConcreteFunction:
        """The ConcreteFunction for this signature, tracing if needed.

        Accepts example values or :class:`TensorSpec`s positionally, like
        ``tf.function``'s method of the same name.
        """
        concrete, _ = self._lookup_or_trace(args, kwargs, count_stats=False)
        return concrete


def function(
    fn: Optional[Callable] = None,
    *,
    input_signature=None,
    name: Optional[str] = None,
    seed: Optional[int] = None,
    target=None,
    machine=None,
    env=None,
    config: Optional[SessionConfig] = None,
):
    """Compile a Python function into a traced, Session-dispatched callable.

    Usable bare (``@repro.function``) or parameterized
    (``@repro.function(input_signature=[...], target=server)``).

    Each distinct call signature (argument dtypes + static shapes) is
    traced exactly once: tensor-like arguments become placeholders,
    ``with repro.device(...)`` blocks annotate placement, ``Variable``\\ s
    created during the trace persist across calls (their initializers
    run lazily before the first step, never per call), and unconsumed
    stateful ops — assignments, queue traffic, ``gradients``-built
    update chains — are auto-fetched so traced side effects survive
    pruning. Repeat calls dispatch from the ConcreteFunction cache
    through one shared Session, so graph optimization, plan caching,
    collectives lowering and RunMetadata all apply to imperative code.

    Args:
        fn: the Python function, when used as a bare decorator.
        input_signature: optional list of :class:`TensorSpec` pinning one
            trace for all compatible calls (e.g. ``TensorSpec([None],
            float64)`` accepts any length without retracing).
        name: scope name for traces (defaults to the function name).
        seed: graph-level RNG seed for ops recorded in traces.
        target/machine/env/config: forwarded to the lazily-created
            :class:`~repro.core.session.Session`, so a traced function
            can dispatch onto a simulated cluster server with multi-job
            placement, custom hardware, or a shared simulation
            environment.

    Returns:
        A :class:`TracedFunction`. Call it with concrete values;
        ``options=``/``run_metadata=`` keywords forward to the
        underlying run. Introspect with ``.trace_count``,
        ``.cache_info()``, ``.get_concrete_function(...)`` and
        ``.session``.
    """
    def wrap(python_function: Callable) -> TracedFunction:
        return TracedFunction(
            python_function,
            input_signature=input_signature,
            name=name,
            seed=seed,
            target=target,
            machine=machine,
            env=env,
            config=config,
        )

    if fn is not None:
        return wrap(fn)
    return wrap
