"""``@repro.function`` — the trace-to-graph frontend unifying eager and
Session modes.

The paper (§II) anticipates eager execution becoming TensorFlow's
default mode; TF2's answer is ``tf.function``: write imperative Python
once, trace it into the white-paper dataflow core, and run it through
the full graph runtime. This package is that bridge for ``repro``:

    import repro as tf

    @tf.function
    def step(a, p):
        with tf.device("/gpu:0"):
            return tf.matmul(a, p)

    q = step(a_np, p_np)        # traced once, then Session-dispatched

Arguments become placeholders, device scopes annotate placement, and
each input signature (dtype + static shape) is traced exactly once —
repeat calls hit the ConcreteFunction cache and, below it, the
Session's plan cache, so graph optimization, cost-accounted simulation,
RunMetadata tracing and distributed placement all apply to imperative
code. Calls made *during* another trace (or with symbolic tensors while
hand-building a graph) inline the Python body instead of nesting a
Session; ``run_functions_eagerly(True)`` flips every traced function to
immediate kernel-registry execution for debugging.
"""

from repro.function.concrete import (
    ConcreteFunction,
    TracedFunction,
    function,
    functions_run_eagerly,
    run_functions_eagerly,
)
from repro.function.tracing import TensorSpec, is_tracing

__all__ = [
    "ConcreteFunction",
    "TensorSpec",
    "TracedFunction",
    "function",
    "functions_run_eagerly",
    "is_tracing",
    "run_functions_eagerly",
]
