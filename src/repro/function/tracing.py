"""Tracing machinery: recording a Python function into a dataflow graph.

This is the mechanical half of ``@repro.function`` (see
:mod:`repro.function.concrete` for dispatch and caching): bind the
call's arguments, replace every tensor-like leaf with a placeholder,
run the Python function once while the target graph is the default
graph, and capture

* the flat placeholder list (in argument order),
* the structured outputs (arbitrary nesting of tensors/None/values),
* unconsumed *stateful* ops (``assign``, queue traffic, tile writes —
  identified through the kernel registry's ``stateful`` flag) so traced
  side effects survive fetch-reachability pruning, and
* variables created during the trace, whose initializers the concrete
  function runs lazily before its first step.

While a trace is active (``is_tracing()``), calling another traced
function *inlines* its Python body into the current graph instead of
dispatching a nested Session — the tf.function inlining behaviour.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro import dtypes
from repro.core.graph import Graph, GraphKeys, Operation
from repro.core.kernels.registry import is_stateful
from repro.core.ops import array_ops
from repro.core.ops.state_ops import Variable
from repro.core.tensor import Tensor, TensorShape, as_shape
from repro.errors import InvalidArgumentError

__all__ = [
    "TensorSpec",
    "TraceResult",
    "bind_arguments",
    "is_tensor_like",
    "is_tracing",
    "leaf_key",
    "spec_of",
    "trace",
]


class TensorSpec:
    """Static description of an argument tensor: dtype + (partial) shape.

    Used in ``input_signature`` to pin one trace for a family of
    compatible call shapes (``TensorSpec([None, 128], float64)`` accepts
    any leading dimension without retracing).
    """

    __slots__ = ("shape", "dtype", "name")

    def __init__(self, shape=None, dtype=dtypes.float32, name: Optional[str] = None):
        self.shape = as_shape(shape)
        self.dtype = dtypes.as_dtype(dtype)
        self.name = name

    def is_compatible_with(self, value) -> bool:
        if isinstance(value, TensorSpec):
            return (
                value.dtype == self.dtype
                and self.shape.is_compatible_with(value.shape)
            )
        arr = np.asarray(value)
        # Shape must be compatible and the value's dtype must convert
        # without changing numeric kind (int->float fine; complex->float
        # would silently drop imaginary parts, so it is rejected).
        return self.shape.is_compatible_with(TensorShape(arr.shape)) and bool(
            np.can_cast(arr.dtype, self.dtype.np_dtype, casting="same_kind")
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, TensorSpec):
            return NotImplemented
        return self.dtype == other.dtype and self.shape.dims == other.shape.dims

    def __hash__(self) -> int:
        return hash((self.dtype, self.shape.dims))

    def __repr__(self) -> str:
        return f"TensorSpec(shape={self.shape}, dtype={self.dtype.name})"


# -- trace nesting state ------------------------------------------------------

class _TraceState(threading.local):
    def __init__(self):
        self.stack: list = []


_trace_state = _TraceState()


def is_tracing() -> bool:
    """Whether a ``@repro.function`` trace is currently recording."""
    return bool(_trace_state.stack)


# -- argument handling ---------------------------------------------------------

def is_tensor_like(value: Any) -> bool:
    """Leaves that become placeholders (everything else is baked static)."""
    return isinstance(value, (np.ndarray, np.generic, list, TensorSpec))


def spec_of(value: Any) -> TensorSpec:
    if isinstance(value, TensorSpec):
        return value
    arr = np.asarray(value)
    return TensorSpec(TensorShape(arr.shape), dtypes.as_dtype(arr.dtype))


def leaf_key(name: str, value: Any):
    """The cache-key contribution of one bound argument."""
    if is_tensor_like(value):
        spec = spec_of(value)
        return ("tensor", name, spec.dtype.name, spec.shape.dims)
    try:
        hash(value)
    except TypeError:
        raise InvalidArgumentError(
            f"Argument {name!r} of a traced function must be tensor-like "
            f"(ndarray/list/TensorSpec) or hashable static metadata, got "
            f"{type(value).__name__}"
        ) from None
    return ("static", name, value)


def bind_arguments(
    fn: Callable, args: tuple, kwargs: dict,
    signature: Optional[inspect.Signature] = None,
) -> list[tuple[str, Any]]:
    """Flatten a call into ``[(argument name, value), ...]`` in order.

    ``*args``/``**kwargs`` parameters expand into one entry per element
    so each tensor gets its own placeholder and key contribution.
    ``signature`` lets callers on the per-call hot path reuse a cached
    ``inspect.Signature`` instead of recomputing it.
    """
    sig = signature if signature is not None else inspect.signature(fn)
    bound = sig.bind(*args, **kwargs)
    bound.apply_defaults()
    entries: list[tuple[str, Any]] = []
    for pname, param in sig.parameters.items():
        if pname not in bound.arguments:
            continue
        value = bound.arguments[pname]
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            entries.extend((f"{pname}{i}", v) for i, v in enumerate(value))
        elif param.kind is inspect.Parameter.VAR_KEYWORD:
            entries.extend((k, value[k]) for k in sorted(value))
        else:
            entries.append((pname, value))
    return entries


def _substitute(fn: Callable, args: tuple, kwargs: dict, replacements: dict,
                signature: Optional[inspect.Signature] = None):
    """Rebuild (args, kwargs) with tensor leaves swapped for placeholders.

    ``replacements`` maps the entry names produced by
    :func:`bind_arguments` to their placeholder tensors.
    """
    sig = signature if signature is not None else inspect.signature(fn)
    bound = sig.bind(*args, **kwargs)
    bound.apply_defaults()
    for pname, param in sig.parameters.items():
        if pname not in bound.arguments:
            continue
        value = bound.arguments[pname]
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            bound.arguments[pname] = tuple(
                replacements.get(f"{pname}{i}", v) for i, v in enumerate(value)
            )
        elif param.kind is inspect.Parameter.VAR_KEYWORD:
            bound.arguments[pname] = {
                k: replacements.get(k, v) for k, v in value.items()
            }
        elif pname in replacements:
            bound.arguments[pname] = replacements[pname]
    return bound.args, bound.kwargs


# -- output structure ----------------------------------------------------------

def flatten_outputs(value: Any, flat: list[Tensor]):
    """Record the output nesting; append tensor leaves to ``flat``.

    Must run while the trace graph is the default graph: concrete leaf
    values (a stray ndarray / python number returned by the function)
    are staged as captured constants.
    """
    if value is None:
        return ("none",)
    if isinstance(value, Variable):
        value = value.value()
    if isinstance(value, Tensor):
        flat.append(value)
        return ("tensor", len(flat) - 1)
    if isinstance(value, (list, tuple)):
        kind = "list" if isinstance(value, list) else "tuple"
        return (kind, [flatten_outputs(v, flat) for v in value])
    if isinstance(value, dict):
        return ("dict", [(k, flatten_outputs(v, flat)) for k, v in value.items()])
    # Concrete leaf: capture as a constant so it round-trips through run.
    from repro.core.graph import convert_to_tensor

    tensor = convert_to_tensor(value, name="captured")
    flat.append(tensor)
    return ("tensor", len(flat) - 1)


def pack_outputs(structure, values: Sequence[Any]):
    """Inverse of :func:`flatten_outputs` over fetched runtime values."""
    kind = structure[0]
    if kind == "none":
        return None
    if kind == "tensor":
        return values[structure[1]]
    if kind == "list":
        return [pack_outputs(s, values) for s in structure[1]]
    if kind == "tuple":
        return tuple(pack_outputs(s, values) for s in structure[1])
    if kind == "dict":
        return {k: pack_outputs(s, values) for k, s in structure[1]}
    raise InvalidArgumentError(f"Corrupt output structure {structure!r}")


# -- side-effect collection ----------------------------------------------------

def _ancestors(roots: Sequence[Operation]) -> set[Operation]:
    seen: set[Operation] = set()
    stack = list(roots)
    while stack:
        op = stack.pop()
        if op in seen:
            continue
        seen.add(op)
        stack.extend(t.op for t in op.inputs)
        stack.extend(op.control_inputs)
    return seen


def collect_side_effects(
    new_ops: Sequence[Operation], output_tensors: Sequence[Tensor]
) -> list[Operation]:
    """Stateful ops from this trace not already fetched via the outputs.

    Uses the registry's ``stateful`` flag (assignments, queue traffic,
    tile writes, RNG draws). Ops covered by a later stateful op's
    dependency closure are skipped, so one fetch per independent effect
    chain suffices.
    """
    covered = _ancestors([t.op for t in output_tensors])
    kept: list[Operation] = []
    for op in reversed(list(new_ops)):  # later ops depend on earlier ones
        if op in covered or not is_stateful(op.type):
            continue
        kept.append(op)
        covered |= _ancestors([op])
    kept.reverse()
    return kept


# -- the trace itself ----------------------------------------------------------

@dataclass
class TraceResult:
    """Everything one recording pass produced."""

    placeholders: list[Tensor]
    structure: tuple
    output_tensors: list[Tensor]
    side_effect_ops: list[Operation]
    variables: list = field(default_factory=list)
    scope: str = ""


def trace(
    fn: Callable,
    graph: Graph,
    name: str,
    args: tuple,
    kwargs: dict,
    entries: Optional[list[tuple[str, Any]]] = None,
    specs: Optional[list[TensorSpec]] = None,
    owner: Any = None,
    signature: Optional[inspect.Signature] = None,
) -> TraceResult:
    """Record one call of ``fn`` into ``graph``.

    Args:
        fn: the Python function to record.
        graph: target graph (made default for the duration).
        name: name-scope for this trace (uniquified by the graph).
        args/kwargs: the triggering call's arguments.
        entries: pre-bound ``[(name, value)]`` list (rebound if omitted).
        specs: placeholder specs overriding the values' own specs
            (the ``input_signature`` path); positional with the
            tensor-like entries.
        owner: pushed on the trace stack (the TracedFunction), so nested
            traced calls detect the recording and inline.
    """
    if entries is None:
        entries = bind_arguments(fn, args, kwargs, signature=signature)
    tensor_entries = [(n, v) for n, v in entries if is_tensor_like(v)]
    if specs is not None and len(specs) != len(tensor_entries):
        raise InvalidArgumentError(
            f"input_signature has {len(specs)} specs but the call supplies "
            f"{len(tensor_entries)} tensor arguments"
        )

    vars_before = len(graph.get_collection(GraphKeys.GLOBAL_VARIABLES))
    ops_before = len(graph.operations)
    placeholders: list[Tensor] = []
    replacements: dict[str, Tensor] = {}
    flat_outputs: list[Tensor] = []
    _trace_state.stack.append(owner if owner is not None else fn)
    try:
        with graph.as_default(), graph.name_scope(name) as scope:
            for index, (pname, value) in enumerate(tensor_entries):
                spec = specs[index] if specs is not None else spec_of(value)
                ph = array_ops.placeholder(
                    spec.dtype, shape=spec.shape, name=pname, graph=graph
                )
                placeholders.append(ph)
                replacements[pname] = ph
            call_args, call_kwargs = _substitute(
                fn, args, kwargs, replacements, signature=signature
            )
            outputs = fn(*call_args, **call_kwargs)
            structure = flatten_outputs(outputs, flat_outputs)
    finally:
        _trace_state.stack.pop()

    new_ops = graph.operations[ops_before:]
    variables = graph.get_collection(GraphKeys.GLOBAL_VARIABLES)[vars_before:]
    # Initializers of variables created by this trace run once, lazily,
    # before the concrete function's first step — never as per-call side
    # effects (they would reset state every invocation).
    initializers = {v.initializer for v in variables}
    side_effects = [
        op
        for op in collect_side_effects(new_ops, flat_outputs)
        if op not in initializers
    ]
    return TraceResult(
        placeholders=placeholders,
        structure=structure,
        output_tensors=flat_outputs,
        side_effect_ops=side_effects,
        variables=variables,
        scope=scope,
    )
