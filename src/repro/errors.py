"""Exception hierarchy for the ``repro`` framework.

The error classes mirror TensorFlow's status codes (which themselves mirror
gRPC status codes): every failure inside the graph runtime, the distributed
runtime, or the simulated cluster raises a subclass of :class:`ReproError`
carrying a machine-readable ``code``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CancelledError",
    "InvalidArgumentError",
    "DeadlineExceededError",
    "NotFoundError",
    "AlreadyExistsError",
    "PermissionDeniedError",
    "ResourceExhaustedError",
    "FailedPreconditionError",
    "AbortedError",
    "OutOfRangeError",
    "UnimplementedError",
    "InternalError",
    "UnavailableError",
    "DataLossError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for all framework errors.

    Attributes:
        code: short machine-readable status string (gRPC status name).
        node_def: optional name of the graph operation involved.
    """

    code = "UNKNOWN"

    def __init__(self, message: str, node_def: str | None = None):
        self.node_def = node_def
        if node_def is not None:
            message = f"{message} [op: {node_def}]"
        super().__init__(message)

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else ""


class CancelledError(ReproError):
    """The operation was cancelled (e.g. a queue was closed mid-dequeue)."""

    code = "CANCELLED"


class InvalidArgumentError(ReproError):
    """A caller supplied an argument the op cannot accept (bad shape/dtype)."""

    code = "INVALID_ARGUMENT"


class DeadlineExceededError(ReproError):
    """A blocking runtime operation exceeded its deadline."""

    code = "DEADLINE_EXCEEDED"


class NotFoundError(ReproError):
    """A named entity (op, device, file, checkpoint) does not exist."""

    code = "NOT_FOUND"


class AlreadyExistsError(ReproError):
    """An entity that should be unique already exists."""

    code = "ALREADY_EXISTS"


class PermissionDeniedError(ReproError):
    """The caller may not perform the operation."""

    code = "PERMISSION_DENIED"


class ResourceExhaustedError(ReproError):
    """A finite resource was exhausted (device memory, graph size limit)."""

    code = "RESOURCE_EXHAUSTED"


class FailedPreconditionError(ReproError):
    """System state rejects the operation (e.g. uninitialized variable)."""

    code = "FAILED_PRECONDITION"


class AbortedError(ReproError):
    """The operation was aborted by a concurrent actor."""

    code = "ABORTED"


class OutOfRangeError(ReproError):
    """Iteration past the end of a dataset / dequeue on a drained queue."""

    code = "OUT_OF_RANGE"


class UnimplementedError(ReproError):
    """The requested feature has no registered implementation."""

    code = "UNIMPLEMENTED"


class InternalError(ReproError):
    """An invariant of the runtime itself was broken."""

    code = "INTERNAL"


class UnavailableError(ReproError):
    """A service (simulated server, link) is not reachable."""

    code = "UNAVAILABLE"


class DataLossError(ReproError):
    """Unrecoverable corruption detected (bad checkpoint, bad wire data)."""

    code = "DATA_LOSS"


class VerificationError(InvalidArgumentError):
    """The static verifier rejected a graph or execution plan.

    Raised by :mod:`repro.analysis` when a graph breaks a structural
    invariant (cycle, dangling reference, shape/dtype inconsistency) or a
    lowered plan contains a variable race, an unpaired send/recv, or a
    collective schedule that cannot complete. Subclasses
    :class:`InvalidArgumentError` because the rejected artifact — the
    user's graph, or a plan an optimizer pass produced from it — is the
    bad argument; ``diagnostics`` carries every
    :class:`repro.analysis.Diagnostic` so callers see all findings, not
    just the first.
    """

    def __init__(self, message: str, node_def: str | None = None,
                 diagnostics: list | None = None):
        super().__init__(message, node_def=node_def)
        self.diagnostics = list(diagnostics or [])
