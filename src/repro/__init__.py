"""repro — a reproduction of "TensorFlow Doing HPC" (Chien et al., 2019).

The package provides:

* ``repro.core`` / top-level ops — a TF-1.x-style deferred-execution
  dataflow engine (graphs, sessions, devices, variables, queues, datasets);
* ``repro.simnet`` — simulated heterogeneous supercomputers (GPUs, NUMA
  nodes, InfiniBand fabrics, Lustre, gRPC/MPI/RDMA transports);
* ``repro.runtime`` — the distributed runtime (cluster specs, servers,
  rendezvous, queue runners, reducers);
* ``repro.slurm`` — a simulated Slurm workload manager and the paper's
  cluster resolver;
* ``repro.apps`` — the paper's four HPC applications (STREAM, tiled
  matmul, CG, FFT);
* ``repro.figures`` — drivers regenerating every table and figure of the
  paper's evaluation.

Quickstart (paper Listing 1)::

    import repro as tf

    g = tf.Graph()
    with g.as_default():
        with g.device('/cpu:0'):
            a = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
            b = tf.random_uniform(shape=[3, 3], dtype=tf.float32)
        with g.device('/gpu:0'):
            c = tf.matmul(a, b)
    with tf.Session(graph=g) as sess:
        ret_c = sess.run(c)
"""

from repro import errors
from repro.core.gradients import (
    RegisterGradient,
    apply_gradients,
    gradients,
    minimize,
)
from repro.core.graph import (
    Graph,
    GraphKeys,
    Operation,
    device,
    get_default_graph,
    reset_default_graph,
)
from repro.core.metadata import RunMetadata, RunOptions
from repro.core.ops import *  # noqa: F401,F403 — the flat op namespace
from repro.core.ops import __all__ as _ops_all
from repro.core.checkpoint import (
    Saver,
    checkpoint_step,
    latest_checkpoint,
    read_checkpoint,
)
from repro.core.optimizer import OptimizerOptions
from repro.core.session import Session, SessionConfig
from repro.core.tensor import SymbolicValue, Tensor, TensorShape
from repro.dtypes import (
    bool_,
    complex64,
    complex128,
    float32,
    float64,
    int32,
    int64,
)
from repro.runtime.clusterspec import ClusterSpec
from repro.runtime.retry import RetryPolicy
from repro.runtime.server import Server, ServerConfig
from repro.simnet.faults import (
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    MessageDrop,
    WorkerCrash,
)

# The serving front-door builds on sessions; imported late so the layer
# below it is fully assembled first.
from repro.serving import ModelServer, ServingConfig

# Imported last: the tracing frontend builds on ops + sessions. After this,
# ``repro.function`` is the decorator (the submodule stays importable as a
# module path, exactly like ``tf.function`` vs TF's internal modules).
from repro.function import (
    ConcreteFunction,
    TensorSpec,
    TracedFunction,
    function,
    functions_run_eagerly,
    run_functions_eagerly,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphKeys",
    "Operation",
    "Tensor",
    "TensorShape",
    "SymbolicValue",
    "Session",
    "SessionConfig",
    "OptimizerOptions",
    "RunOptions",
    "RunMetadata",
    "ClusterSpec",
    "Server",
    "ServerConfig",
    "Saver",
    "checkpoint_step",
    "latest_checkpoint",
    "read_checkpoint",
    "RetryPolicy",
    "FaultInjector",
    "FaultPlan",
    "WorkerCrash",
    "LinkDegradation",
    "MessageDrop",
    "ModelServer",
    "ServingConfig",
    "ConcreteFunction",
    "TensorSpec",
    "TracedFunction",
    "function",
    "functions_run_eagerly",
    "run_functions_eagerly",
    "RegisterGradient",
    "gradients",
    "apply_gradients",
    "minimize",
    "device",
    "get_default_graph",
    "reset_default_graph",
    "errors",
    "float32",
    "float64",
    "complex64",
    "complex128",
    "int32",
    "int64",
    "bool_",
    *_ops_all,
]
